//! Quantized cold-tier KV storage and dequant-fused attend kernels.
//!
//! The hot tier stores KV planes as f32 [`ColBlock`]s; the cold tier trades
//! precision for capacity. Two formats are supported:
//!
//! * **int8** — per-plane affine quantization: plane `r` stores
//!   `q = round((x - lo_r) / scale_r)` as one byte, with
//!   `scale_r = (hi_r - lo_r) / 255` derived from the plane's value range.
//!   Dequantization is `lo_r + q · scale_r`; the absolute roundtrip error
//!   is bounded by [`QuantizedColBlock::error_bound`] (half a step plus
//!   f32 rounding slack, ≤ `(hi_r − lo_r) / 500`).
//! * **f16** — IEEE-754 half precision (round-to-nearest-even), the
//!   paper's own KV storage type (§6.1). Relative error ≤ 2⁻¹¹ in the
//!   normal range; tiny magnitudes flush toward zero through the
//!   subnormal range (absolute error ≤ 2⁻²⁵).
//!
//! The attend kernels ([`QuantizedColBlock::rows_dot_acc`],
//! [`QuantizedColBlock::axpy_plane`]) read the quantized planes *directly*
//! and are **bit-identical** to dequantizing the whole block first and
//! attending over the f32 copy: dequantization is element-wise and the
//! kernels replicate [`crate::matrix`]'s exact `LANES`-chunk grouping —
//! each chunk is dequantized into a stack temporary, accumulated with the
//! same per-lane products, folded with the same fixed tree, and finished
//! with the same ascending scalar tail. A cold hit therefore attends
//! without ever materializing an f32 copy of the segment, and loses no
//! accuracy beyond the storage quantization itself.

use crate::matrix::{fold_lanes, LANES};
use crate::packed::ColBlock;

/// Converts an `f32` to IEEE-754 half precision (round-to-nearest-even)
/// and back — the storage precision of the paper's KV cache ("We use FP16
/// as the data type for KV cache", §6.1).
///
/// ```
/// use bat_tensor::quant::fp16_round_trip;
///
/// // Values representable in fp16 survive exactly.
/// assert_eq!(fp16_round_trip(0.5), 0.5);
/// // Others round to the nearest half-precision value.
/// let v = fp16_round_trip(0.1);
/// assert!((v - 0.1).abs() < 1e-4);
/// ```
pub fn fp16_round_trip(x: f32) -> f32 {
    f16_to_f32(f32_to_f16(x))
}

/// `f32` → fp16 bits, round-to-nearest-even, with overflow to ±inf and
/// flush of sub-half-denormal magnitudes toward zero handled per IEEE.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN.
        let payload = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | payload;
    }
    // Re-bias exponent: f32 bias 127 → f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal range: keep 10 mantissa bits with round-to-nearest-even.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let shifted = mant >> 13;
        let round_bit = (mant >> 12) & 1;
        let sticky = (mant & 0x0fff) != 0;
        let mut out = sign | half_exp | shifted as u16;
        if round_bit == 1 && (sticky || (shifted & 1) == 1) {
            out = out.wrapping_add(1); // may carry into the exponent: fine
        }
        return out;
    }
    if unbiased >= -24 {
        // Subnormal half: shift the implicit leading 1 into the mantissa.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let shifted = full >> shift;
        let round_bit = (full >> (shift - 1)) & 1;
        let sticky = (full & ((1u32 << (shift - 1)) - 1)) != 0;
        let mut out = sign | shifted as u16;
        if round_bit == 1 && (sticky || (shifted & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    sign // underflow → ±0
}

/// fp16 bits → `f32`.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: normalize.
            let lead = m.leading_zeros() - 22; // zeros within the 10-bit field
            let exp32 = 127 - 15 - lead;
            let mant32 = (m << (lead + 1)) & 0x03ff;
            sign | (exp32 << 23) | (mant32 << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, m) => sign | 0x7f80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// Storage format of a quantized cold-tier block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantKind {
    /// One byte per element, per-plane affine scale/zero-point.
    Int8,
    /// Two bytes per element, IEEE-754 half precision.
    F16,
}

impl QuantKind {
    /// Payload bytes per stored element.
    pub fn bytes_per_element(self) -> usize {
        match self {
            QuantKind::Int8 => 1,
            QuantKind::F16 => 2,
        }
    }

    /// Cold-tier footprint as a fraction of the f32 hot-tier footprint
    /// (payload only; the int8 per-plane parameters are amortized over the
    /// plane length and ignored here). This is the ratio the tiered pool's
    /// capacity accounting uses when charging a demoted entry.
    pub fn compression_ratio(self) -> f64 {
        self.bytes_per_element() as f64 / std::mem::size_of::<f32>() as f64
    }
}

/// Quantized payload, plane-major with stride `len` (exactly packed).
#[derive(Debug, Clone, PartialEq)]
enum Payload {
    /// `data[r * len + j]` is plane `r`, column `j`; `params[r]` is the
    /// plane's `(scale, lo)` so dequantization is `lo + q · scale`.
    Int8 {
        data: Vec<u8>,
        params: Vec<(f32, f32)>,
    },
    /// fp16 bit patterns, same layout.
    F16 { data: Vec<u16> },
}

/// A `rows × len` plane-major block stored in a quantized format — the
/// cold tier's twin of [`ColBlock`].
///
/// ```
/// use bat_tensor::{ColBlock, quant::{QuantKind, QuantizedColBlock}};
///
/// let mut b = ColBlock::new(2);
/// b.push_col(&[1.0, -4.0]);
/// b.push_col(&[3.0, 0.0]);
/// let q = QuantizedColBlock::quantize(&b, QuantKind::Int8);
/// let back = q.dequantize();
/// for r in 0..2 {
///     for (x, y) in b.plane(r).iter().zip(back.plane(r)) {
///         assert!((x - y).abs() <= q.error_bound(r));
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedColBlock {
    rows: usize,
    len: usize,
    payload: Payload,
}

impl QuantizedColBlock {
    /// Quantizes an f32 block into the given storage format.
    ///
    /// Int8 inputs must be finite; f16 inputs outside the half-precision
    /// normal range saturate to ±inf per IEEE (keep KV magnitudes under
    /// 65504, which every RMS-normed transformer activation satisfies).
    pub fn quantize(block: &ColBlock, kind: QuantKind) -> Self {
        let (rows, len) = (block.rows(), block.len());
        let payload = match kind {
            QuantKind::Int8 => {
                let mut data = vec![0u8; rows * len];
                let mut params = Vec::with_capacity(rows);
                for r in 0..rows {
                    let plane = block.plane(r);
                    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                    for &x in plane {
                        debug_assert!(x.is_finite(), "int8 quantization needs finite inputs");
                        lo = lo.min(x);
                        hi = hi.max(x);
                    }
                    if plane.is_empty() {
                        (lo, hi) = (0.0, 0.0);
                    }
                    // A constant plane quantizes exactly: scale 0 makes
                    // every dequantized element `lo`.
                    let scale = if hi > lo { (hi - lo) / 255.0 } else { 0.0 };
                    params.push((scale, lo));
                    let dst = &mut data[r * len..(r + 1) * len];
                    for (slot, &x) in dst.iter_mut().zip(plane) {
                        *slot = if scale == 0.0 {
                            0
                        } else {
                            ((x - lo) / scale).round().clamp(0.0, 255.0) as u8
                        };
                    }
                }
                Payload::Int8 { data, params }
            }
            QuantKind::F16 => {
                let mut data = vec![0u16; rows * len];
                for r in 0..rows {
                    let dst = &mut data[r * len..(r + 1) * len];
                    for (slot, &x) in dst.iter_mut().zip(block.plane(r)) {
                        *slot = f32_to_f16(x);
                    }
                }
                Payload::F16 { data }
            }
        };
        QuantizedColBlock { rows, len, payload }
    }

    /// Number of planes.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block holds no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The storage format.
    pub fn kind(&self) -> QuantKind {
        match self.payload {
            Payload::Int8 { .. } => QuantKind::Int8,
            Payload::F16 { .. } => QuantKind::F16,
        }
    }

    /// Bytes of quantized storage resident (payload plus int8 per-plane
    /// parameters) — what the cold tier charges for this block.
    pub fn resident_bytes(&self) -> usize {
        match &self.payload {
            Payload::Int8 { data, params } => {
                data.len() + params.len() * std::mem::size_of::<(f32, f32)>()
            }
            Payload::F16 { data } => data.len() * 2,
        }
    }

    /// Documented absolute roundtrip error bound for plane `r`: any
    /// element `x` of the source plane satisfies
    /// `|dequantize(quantize(x)) - x| <= error_bound(r)`.
    ///
    /// * Int8: half a quantization step plus f32 arithmetic slack —
    ///   `(hi - lo) / 500` (the exact half-step is `(hi - lo) / 510`).
    /// * F16: `2⁻¹¹ · max|x|` relative in the normal range plus the
    ///   largest subnormal gap `2⁻²⁵` absolute.
    pub fn error_bound(&self, r: usize) -> f32 {
        match &self.payload {
            Payload::Int8 { params, .. } => {
                let (scale, _) = params[r];
                // scale = (hi - lo) / 255: half a step with ~2% headroom
                // for the f32 rounding in quantize/dequantize.
                scale * 255.0 / 500.0
            }
            Payload::F16 { data } => {
                let max_abs = data[r * self.len..(r + 1) * self.len]
                    .iter()
                    .map(|&h| f16_to_f32(h).abs())
                    .fold(0.0f32, f32::max);
                max_abs / 2048.0 + 6.0e-8
            }
        }
    }

    /// Dequantized element at plane `r`, column `j` — the exact value the
    /// fused kernels read, and the exact value [`Self::dequantize`] writes.
    #[inline]
    pub fn at(&self, r: usize, j: usize) -> f32 {
        debug_assert!(r < self.rows && j < self.len, "index out of range");
        match &self.payload {
            Payload::Int8 { data, params } => {
                let (scale, lo) = params[r];
                lo + f32::from(data[r * self.len + j]) * scale
            }
            Payload::F16 { data } => f16_to_f32(data[r * self.len + j]),
        }
    }

    /// Materializes the full f32 block (promotion path, oracles, tests;
    /// the attend hot path reads the quantized planes directly).
    pub fn dequantize(&self) -> ColBlock {
        let mut flat = vec![0.0f32; self.rows * self.len];
        for r in 0..self.rows {
            let dst = &mut flat[r * self.len..(r + 1) * self.len];
            for (j, slot) in dst.iter_mut().enumerate() {
                *slot = self.at(r, j);
            }
        }
        ColBlock::from_planes(self.rows, self.len, &flat)
    }

    /// Dequantizes the `LANES`-chunk of plane `r` starting at column `i`
    /// into a stack temporary.
    #[inline(always)]
    fn dequant_chunk(&self, r: usize, i: usize, out: &mut [f32; LANES]) {
        match &self.payload {
            Payload::Int8 { data, params } => {
                let (scale, lo) = params[r];
                let src = &data[r * self.len + i..r * self.len + i + LANES];
                for (slot, &q) in out.iter_mut().zip(src) {
                    *slot = lo + f32::from(q) * scale;
                }
            }
            Payload::F16 { data } => {
                let src = &data[r * self.len + i..r * self.len + i + LANES];
                for (slot, &h) in out.iter_mut().zip(src) {
                    *slot = f16_to_f32(h);
                }
            }
        }
    }

    /// `out[c] += ⟨s, dequantized plane(row0 + c)⟩` over the first
    /// `s.len()` columns — the dequant-fused twin of
    /// [`crate::packed::SplitCols::rows_dot_acc`], bit-identical to
    /// running that kernel on [`Self::dequantize`]'s output: per row, the
    /// same `LANES`-chunk products in the same order, the same fixed-tree
    /// fold, the same ascending scalar tail. (The f32 twin's 4-row outer
    /// unroll shares score-chunk loads but keeps per-row accumulators, so
    /// per-row arithmetic is unchanged by the unroll.)
    ///
    /// # Panics
    ///
    /// Panics if `row0 + out.len() > self.rows()` or `s.len() > self.len()`.
    pub fn rows_dot_acc(&self, row0: usize, s: &[f32], out: &mut [f32]) {
        assert!(row0 + out.len() <= self.rows, "rows_dot_acc row overrun");
        assert!(s.len() <= self.len, "rows_dot_acc column overrun");
        let n = s.len();
        let main = n / LANES * LANES;
        let mut buf = [0.0f32; LANES];
        for (c, slot) in out.iter_mut().enumerate() {
            let r = row0 + c;
            let mut acc = [0.0f32; LANES];
            let mut i = 0;
            while i < main {
                let ps: &[f32; LANES] = s[i..i + LANES].try_into().unwrap();
                self.dequant_chunk(r, i, &mut buf);
                for l in 0..LANES {
                    acc[l] += ps[l] * buf[l];
                }
                i += LANES;
            }
            let mut sum = fold_lanes(acc, &[], &[]);
            for (j, &sj) in s.iter().enumerate().skip(main) {
                sum += sj * self.at(r, j);
            }
            *slot += sum;
        }
    }

    /// `out[j] += coeff · dequantized plane(r)[j]` over the first `window`
    /// columns — the dequant-fused twin of
    /// [`crate::packed::SplitCols::axpy_plane`]. `axpy` is element-wise,
    /// so fusing the per-element dequantization cannot change a bit.
    ///
    /// # Panics
    ///
    /// Panics if `window > self.len()` or `out.len() < window`.
    pub fn axpy_plane(&self, r: usize, window: usize, coeff: f32, out: &mut [f32]) {
        assert!(window <= self.len, "axpy_plane window overrun");
        for (j, o) in out.iter_mut().take(window).enumerate() {
            *o += coeff * self.at(r, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::SplitCols;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_block(rows: usize, cols: usize, scale: f32, rng: &mut SmallRng) -> ColBlock {
        let mut b = ColBlock::new(rows);
        for _ in 0..cols {
            let col: Vec<f32> = (0..rows).map(|_| rng.gen_range(-scale..scale)).collect();
            b.push_col(&col);
        }
        b
    }

    #[test]
    fn f16_matches_the_reference_converter_shape() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 65504.0, -65504.0] {
            assert_eq!(fp16_round_trip(v), v, "{v}");
        }
        assert_eq!(fp16_round_trip(f32::INFINITY), f32::INFINITY);
        assert!(fp16_round_trip(f32::NAN).is_nan());
        assert_eq!(fp16_round_trip(1e6), f32::INFINITY);
        assert_eq!(fp16_round_trip(1e-10), 0.0);
    }

    #[test]
    fn int8_roundtrip_stays_within_documented_bound() {
        let mut rng = SmallRng::seed_from_u64(17);
        for &(rows, cols, scale) in &[(4usize, 33usize, 1.0f32), (8, 7, 12.5), (3, 1, 0.01)] {
            let b = random_block(rows, cols, scale, &mut rng);
            let q = QuantizedColBlock::quantize(&b, QuantKind::Int8);
            let back = q.dequantize();
            for r in 0..rows {
                let bound = q.error_bound(r);
                for (x, y) in b.plane(r).iter().zip(back.plane(r)) {
                    assert!((x - y).abs() <= bound, "plane {r}: |{x} - {y}| > {bound}");
                }
            }
        }
    }

    #[test]
    fn constant_plane_quantizes_exactly() {
        let mut b = ColBlock::new(2);
        for _ in 0..9 {
            b.push_col(&[3.25, -1.5]);
        }
        let q = QuantizedColBlock::quantize(&b, QuantKind::Int8);
        let back = q.dequantize();
        assert_eq!(back.plane(0), b.plane(0));
        assert_eq!(back.plane(1), b.plane(1));
        assert_eq!(q.error_bound(0), 0.0);
    }

    #[test]
    fn f16_roundtrip_stays_within_documented_bound() {
        let mut rng = SmallRng::seed_from_u64(18);
        let b = random_block(6, 41, 8.0, &mut rng);
        let q = QuantizedColBlock::quantize(&b, QuantKind::F16);
        let back = q.dequantize();
        for r in 0..6 {
            let bound = q.error_bound(r);
            for (x, y) in b.plane(r).iter().zip(back.plane(r)) {
                assert!((x - y).abs() <= bound, "plane {r}: |{x} - {y}| > {bound}");
            }
        }
    }

    #[test]
    fn fused_kernels_bit_match_dequantize_then_attend() {
        let mut rng = SmallRng::seed_from_u64(42);
        for kind in [QuantKind::Int8, QuantKind::F16] {
            for &(rows, cols) in &[(8usize, 5usize), (8, 8), (16, 200), (6, 17), (4, 1)] {
                let b = random_block(rows, cols, 2.0, &mut rng);
                let q = QuantizedColBlock::quantize(&b, kind);
                let deq = q.dequantize();
                let view = SplitCols::new(None, &deq);
                for window in [1usize, cols / 2 + 1, cols] {
                    let s: Vec<f32> = (0..window).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let mut got = vec![0.1f32; rows];
                    let mut want = vec![0.1f32; rows];
                    q.rows_dot_acc(0, &s, &mut got);
                    view.rows_dot_acc(0, &s, &mut want);
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.to_bits(), w.to_bits(), "{kind:?} rows_dot_acc mismatch");
                    }
                    let mut got = vec![0.2f32; window];
                    let mut want = vec![0.2f32; window];
                    q.axpy_plane(rows - 1, window, 0.37, &mut got);
                    view.axpy_plane(rows - 1, window, 0.37, &mut want);
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.to_bits(), w.to_bits(), "{kind:?} axpy_plane mismatch");
                    }
                }
            }
        }
    }

    #[test]
    fn resident_bytes_reflect_compression() {
        let mut rng = SmallRng::seed_from_u64(5);
        let b = random_block(16, 64, 1.0, &mut rng);
        let f32_bytes = 16 * 64 * 4;
        let i8 = QuantizedColBlock::quantize(&b, QuantKind::Int8);
        let f16 = QuantizedColBlock::quantize(&b, QuantKind::F16);
        assert_eq!(f16.resident_bytes(), f32_bytes / 2);
        assert!(
            i8.resident_bytes() < f32_bytes / 3,
            "{}",
            i8.resident_bytes()
        );
        assert_eq!(QuantKind::Int8.compression_ratio(), 0.25);
        assert_eq!(QuantKind::F16.compression_ratio(), 0.5);
    }
}
