//! Rotary position embeddings (RoPE).
//!
//! RoPE rotates each consecutive pair of query/key dimensions by an angle
//! proportional to the token's *position ID*. Bipartite Attention's key
//! trick (§4.2) is to **assign position IDs explicitly** — every candidate
//! item restarts from the same base position — so that an item's keys are
//! identical no matter where the item block physically sits in the prompt.
//! That is what makes item KV entries reusable across prompts.
//!
//! The table is precomputed per `(position, dim)` for speed and determinism.

/// Precomputed RoPE sine/cosine table.
///
/// ```
/// use bat_tensor::RopeTable;
///
/// let rope = RopeTable::new(8, 64, 10_000.0);
/// let mut q = vec![1.0f32; 8];
/// rope.apply(&mut q, 3);
/// // Position 0 is the identity rotation.
/// let mut k = vec![1.0f32; 8];
/// rope.apply(&mut k, 0);
/// assert_eq!(k, vec![1.0f32; 8]);
/// ```
#[derive(Debug, Clone)]
pub struct RopeTable {
    head_dim: usize,
    max_positions: usize,
    /// `cos[pos * head_dim/2 + i]`, `sin[...]` for pair `i` at `pos`.
    cos: Vec<f32>,
    sin: Vec<f32>,
}

impl RopeTable {
    /// Builds a table for `head_dim`-dimensional heads over positions
    /// `0..max_positions`, with the given frequency `base` (10 000 in
    /// Llama/Qwen).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is odd (RoPE rotates dimension *pairs*).
    pub fn new(head_dim: usize, max_positions: usize, base: f32) -> Self {
        assert!(head_dim.is_multiple_of(2), "RoPE head_dim must be even");
        let half = head_dim / 2;
        let mut cos = Vec::with_capacity(max_positions * half);
        let mut sin = Vec::with_capacity(max_positions * half);
        for pos in 0..max_positions {
            for i in 0..half {
                let freq = 1.0 / base.powf(2.0 * i as f32 / head_dim as f32);
                let angle = pos as f32 * freq;
                cos.push(angle.cos());
                sin.push(angle.sin());
            }
        }
        RopeTable {
            head_dim,
            max_positions,
            cos,
            sin,
        }
    }

    /// Head dimension this table was built for.
    #[inline]
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Largest position ID this table supports (exclusive).
    #[inline]
    pub fn max_positions(&self) -> usize {
        self.max_positions
    }

    /// Rotates `vec` (one attention head of length `head_dim`) in place for
    /// the given position ID.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != head_dim` or `position >= max_positions`.
    pub fn apply(&self, vec: &mut [f32], position: usize) {
        assert_eq!(vec.len(), self.head_dim, "RoPE dim mismatch");
        assert!(
            position < self.max_positions,
            "position {position} out of RoPE table range {}",
            self.max_positions
        );
        let half = self.head_dim / 2;
        let off = position * half;
        for i in 0..half {
            let (c, s) = (self.cos[off + i], self.sin[off + i]);
            let (a, b) = (vec[2 * i], vec[2 * i + 1]);
            vec[2 * i] = a * c - b * s;
            vec[2 * i + 1] = a * s + b * c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn position_zero_is_identity() {
        let rope = RopeTable::new(16, 32, 10_000.0);
        let original: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
        let mut v = original.clone();
        rope.apply(&mut v, 0);
        assert_eq!(v, original);
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = RopeTable::new(8, 64, 10_000.0);
        let mut v = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.25, 2.0, -0.5];
        let norm_before: f32 = v.iter().map(|x| x * x).sum();
        rope.apply(&mut v, 17);
        let norm_after: f32 = v.iter().map(|x| x * x).sum();
        assert!((norm_before - norm_after).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "out of RoPE table range")]
    fn position_out_of_range_panics() {
        let rope = RopeTable::new(4, 8, 10_000.0);
        let mut v = vec![0.0; 4];
        rope.apply(&mut v, 8);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_head_dim_panics() {
        let _ = RopeTable::new(3, 8, 10_000.0);
    }

    proptest! {
        /// The RoPE *relative position* property: ⟨R(q,m), R(k,n)⟩ depends on
        /// m−n only. This is exactly why resetting every item's base position
        /// to the same value makes item KV caches position-independent.
        #[test]
        fn dot_depends_on_relative_position(
            seed in 0u64..500,
            m in 0usize..32,
            shift in 0usize..32,
        ) {
            use rand::{Rng, SeedableRng, rngs::SmallRng};
            let rope = RopeTable::new(8, 128, 10_000.0);
            let mut rng = SmallRng::seed_from_u64(seed);
            let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let k: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let delta = 5usize;

            // Pair 1: positions (m + delta, m).
            let (mut q1, mut k1) = (q.clone(), k.clone());
            rope.apply(&mut q1, m + delta);
            rope.apply(&mut k1, m);

            // Pair 2: both shifted by `shift`.
            let (mut q2, mut k2) = (q.clone(), k.clone());
            rope.apply(&mut q2, m + delta + shift);
            rope.apply(&mut k2, m + shift);

            prop_assert!((dot(&q1, &k1) - dot(&q2, &k2)).abs() < 1e-3);
        }

        /// Rotation is an isometry at every position.
        #[test]
        fn isometry(seed in 0u64..500, pos in 0usize..64) {
            use rand::{Rng, SeedableRng, rngs::SmallRng};
            let rope = RopeTable::new(16, 64, 10_000.0);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut v: Vec<f32> = (0..16).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let before: f32 = v.iter().map(|x| x * x).sum();
            rope.apply(&mut v, pos);
            let after: f32 = v.iter().map(|x| x * x).sum();
            prop_assert!((before - after).abs() < 1e-3);
        }
    }
}
