//! Elementwise and reduction kernels: softmax, RMSNorm, SiLU.

/// Numerically-stable in-place softmax over `logits`.
///
/// Subtracts the maximum before exponentiating, so arbitrarily large logits
/// do not overflow. An all-`-inf` row (fully masked) becomes all zeros
/// rather than NaN.
///
/// ```
/// let mut v = vec![1.0f32, 2.0, 3.0];
/// bat_tensor::stable_softmax_in_place(&mut v);
/// assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(v[2] > v[1] && v[1] > v[0]);
/// ```
pub fn stable_softmax_in_place(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        logits.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        logits.iter_mut().for_each(|v| *v /= sum);
    }
}

/// Masked softmax: positions where `allowed[i]` is false receive probability
/// zero; the remainder normalizes over the allowed set.
///
/// This is the kernel behind Bipartite Attention's cross-item masking: a
/// query token's attention row is computed over exactly the positions its
/// mask admits.
///
/// # Panics
///
/// Panics if `logits.len() != allowed.len()`.
pub fn softmax_masked_in_place(logits: &mut [f32], allowed: &[bool]) {
    assert_eq!(logits.len(), allowed.len(), "mask arity mismatch");
    for (v, &ok) in logits.iter_mut().zip(allowed) {
        if !ok {
            *v = f32::NEG_INFINITY;
        }
    }
    stable_softmax_in_place(logits);
}

/// Root-mean-square layer normalization (as in Llama/Qwen):
/// `x_i ← x_i / rms(x) · gain_i`, `rms(x) = sqrt(mean(x²) + ε)`.
///
/// # Panics
///
/// Panics if `x.len() != gain.len()`.
pub fn rms_norm(x: &[f32], gain: &[f32], eps: f32) -> Vec<f32> {
    assert_eq!(x.len(), gain.len(), "rms_norm arity mismatch");
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len().max(1) as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    x.iter().zip(gain).map(|(v, g)| v * inv * g).collect()
}

/// SiLU (swish) activation `x · sigmoid(x)`, used in the SwiGLU FFN.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot arity mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `out += scale * v` elementwise.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(out: &mut [f32], scale: f32, v: &[f32]) {
    assert_eq!(out.len(), v.len(), "axpy arity mismatch");
    for (o, &x) in out.iter_mut().zip(v) {
        *o += scale * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut v = vec![0.5f32, 1.5, -2.0];
        stable_softmax_in_place(&mut v);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(v[1] > v[0] && v[0] > v[2]);
    }

    #[test]
    fn softmax_survives_huge_logits() {
        let mut v = vec![1e30f32, 1e30, 0.0];
        stable_softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fully_masked_row_is_zero() {
        let mut v = vec![3.0f32, 1.0];
        softmax_masked_in_place(&mut v, &[false, false]);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn mask_zeroes_disallowed_positions() {
        let mut v = vec![1.0f32, 5.0, 1.0];
        softmax_masked_in_place(&mut v, &[true, false, true]);
        assert_eq!(v[1], 0.0);
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!((v[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_softmax_is_noop() {
        let mut v: Vec<f32> = vec![];
        stable_softmax_in_place(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn rms_norm_produces_unit_scale() {
        let x = vec![3.0f32, 4.0];
        let g = vec![1.0f32, 1.0];
        let y = rms_norm(&x, &g, 1e-6);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((y[0] - 3.0 / rms).abs() < 1e-5);
        assert!((y[1] - 4.0 / rms).abs() < 1e-5);
    }

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0f32, 2.0];
        axpy(&mut out, 2.0, &[0.5, 0.5]);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    proptest! {
        /// Softmax is invariant to adding a constant to all logits.
        #[test]
        fn softmax_shift_invariance(xs in proptest::collection::vec(-20.0f32..20.0, 1..16), shift in -50.0f32..50.0) {
            let mut a = xs.clone();
            let mut b: Vec<f32> = xs.iter().map(|v| v + shift).collect();
            stable_softmax_in_place(&mut a);
            stable_softmax_in_place(&mut b);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Softmax output is a probability distribution.
        #[test]
        fn softmax_is_distribution(xs in proptest::collection::vec(-30.0f32..30.0, 1..32)) {
            let mut v = xs;
            stable_softmax_in_place(&mut v);
            prop_assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
            prop_assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }

        /// RMSNorm output has RMS ≈ 1 when gain is all-ones.
        #[test]
        fn rms_norm_unit_rms(xs in proptest::collection::vec(-10.0f32..10.0, 2..32)) {
            // Avoid the degenerate all-zeros vector.
            prop_assume!(xs.iter().any(|v| v.abs() > 1e-3));
            let g = vec![1.0f32; xs.len()];
            let y = rms_norm(&xs, &g, 1e-8);
            let rms = (y.iter().map(|v| v * v).sum::<f32>() / y.len() as f32).sqrt();
            prop_assert!((rms - 1.0).abs() < 1e-2);
        }
    }
}
