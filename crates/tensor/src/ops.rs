//! Elementwise and reduction kernels: softmax, RMSNorm, SiLU, and the
//! fused attention epilogues (masked-softmax·V, SiLU·V).

use crate::Matrix;

/// Numerically-stable in-place softmax over `logits`.
///
/// Subtracts the maximum before exponentiating, so arbitrarily large logits
/// do not overflow. An all-`-inf` row (fully masked) becomes all zeros
/// rather than NaN.
///
/// ```
/// let mut v = vec![1.0f32, 2.0, 3.0];
/// bat_tensor::stable_softmax_in_place(&mut v);
/// assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(v[2] > v[1] && v[1] > v[0]);
/// ```
pub fn stable_softmax_in_place(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        logits.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        logits.iter_mut().for_each(|v| *v /= sum);
    }
}

/// Masked softmax: positions where `allowed[i]` is false receive probability
/// zero; the remainder normalizes over the allowed set.
///
/// This is the kernel behind Bipartite Attention's cross-item masking: a
/// query token's attention row is computed over exactly the positions its
/// mask admits.
///
/// # Panics
///
/// Panics if `logits.len() != allowed.len()`.
pub fn softmax_masked_in_place(logits: &mut [f32], allowed: &[bool]) {
    assert_eq!(logits.len(), allowed.len(), "mask arity mismatch");
    for (v, &ok) in logits.iter_mut().zip(allowed) {
        if !ok {
            *v = f32::NEG_INFINITY;
        }
    }
    stable_softmax_in_place(logits);
}

/// Root-mean-square layer normalization (as in Llama/Qwen):
/// `x_i ← x_i / rms(x) · gain_i`, `rms(x) = sqrt(mean(x²) + ε)`.
///
/// # Panics
///
/// Panics if `x.len() != gain.len()`.
pub fn rms_norm(x: &[f32], gain: &[f32], eps: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    rms_norm_into(x, gain, eps, &mut out);
    out
}

/// [`rms_norm`] writing into a caller-owned slice — the zero-allocation
/// twin the forward workspace uses per row. Same arithmetic in the same
/// order, so results are bit-identical.
///
/// # Panics
///
/// Panics if the three slices' lengths differ.
pub fn rms_norm_into(x: &[f32], gain: &[f32], eps: f32, out: &mut [f32]) {
    assert_eq!(x.len(), gain.len(), "rms_norm arity mismatch");
    assert_eq!(x.len(), out.len(), "rms_norm output arity mismatch");
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len().max(1) as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    for ((o, v), g) in out.iter_mut().zip(x).zip(gain) {
        *o = v * inv * g;
    }
}

/// SiLU (swish) activation `x · sigmoid(x)`, used in the SwiGLU FFN.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Polynomial `exp` approximation (relative error ≲ 2⁻²¹, i.e. well under
/// f32 test tolerances), written so LLVM can autovectorize loops over it:
/// range reduction uses the add-magic-constant rounding trick instead of
/// `floor` (a libm call on baseline x86-64), the 2ᵏ reconstruction is pure
/// integer bit math on the magic-shifted float itself — no float→int cast
/// anywhere (Rust's casts saturate, which LLVM vectorizes as an expensive
/// compare/select chain; dodging the cast roughly tripled the softmax
/// exp-pass throughput) — and the polynomial is a chain of mul/adds.
///
/// The batched forward paths spend most of their non-matmul time in
/// softmax/SiLU exponentials; swapping libm's scalar `exp` (~15 ns) for
/// this (~1 ns vectorized) is a headline kernel win. Inputs below ≈ -87
/// clamp to `exp(-87) ≈ 1.6e-38` rather than exactly 0 — callers that need
/// exact zeros for masked slots (softmax over `-inf`) handle the
/// fully-masked row before calling and tolerate ~1e-38 weights otherwise.
#[inline]
// The digits are Cephes' exact hi/lo split of ln 2 and minimax
// coefficients; "rounding" them as clippy suggests would change the split.
#[allow(clippy::excessive_precision)]
pub fn fast_exp(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5·2²³: adding it forces round-to-nearest-integer in the mantissa.
    const MAGIC: f32 = 12_582_912.0;
    let x = x.clamp(-87.0, 88.0);
    let t = x * LOG2E + MAGIC; // mantissa now holds 2²² + round(x / ln 2)
    let k = t - MAGIC; // round(x / ln 2), exact integer as a float
    let r = x - k * LN2_HI - k * LN2_LO; // |r| ≤ ln2/2 in extended precision
                                         // Degree-5 minimax polynomial for exp(r) on [-ln2/2, ln2/2] (Cephes).
    let mut p = 1.987_569_2e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 5.000_000_1e-1;
    let y = p * r * r + r + 1.0;
    // 2ᵏ straight from `t`'s bits: its low mantissa bits are 2²² + k, so
    // subtracting (2²² − 127) leaves k + 127 in the low bits and the shift
    // pushes everything else out of the word. k ∈ [-126, 127] post-clamp.
    let two_k = f32::from_bits(t.to_bits().wrapping_sub((1 << 22) - 127) << 23);
    y * two_k
}

/// SiLU via [`fast_exp`] — the activation kernel of the batched forward.
#[inline]
pub fn fast_silu(x: f32) -> f32 {
    x / (1.0 + fast_exp(-x))
}

/// SIMD lane width of the reduction kernels below: eight independent f32
/// accumulator lanes fill one AVX register (two SSE registers), and because
/// each lane is its own chain the compiler vectorizes without
/// reassociating anything the contract cares about.
const LANES: usize = 8;

/// Lane-parallel maximum. `max` is exact and order-independent (for the
/// non-NaN inputs the softmax shift sees), but the lane layout is fixed
/// anyway: 8 parallel chains, a fixed tree fold, then the ascending tail.
/// A plain `fold(NEG_INFINITY, f32::max)` is a serial dependency chain the
/// compiler cannot widen — on a 250-long attention row that chain was
/// roughly a third of the whole softmax cost.
#[inline(always)]
fn lane_max(xs: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; LANES];
    let mut it = xs.chunks_exact(LANES);
    for p in &mut it {
        let p: &[f32; LANES] = p.try_into().unwrap();
        for l in 0..LANES {
            acc[l] = acc[l].max(p[l]);
        }
    }
    let mut m = (acc[0].max(acc[1]).max(acc[2].max(acc[3])))
        .max(acc[4].max(acc[5]).max(acc[6].max(acc[7])));
    for &x in it.remainder() {
        m = m.max(x);
    }
    m
}

/// Lane-parallel sum with the same fixed tree fold as [`lane_max`]. The
/// association is a pure function of the slice length, so the result is
/// deterministic; it differs from a left-to-right `iter().sum()` by normal
/// f32 reassociation error (≈ 1 ulp per lane), which the softmax tolerance
/// tests cover.
#[inline(always)]
fn lane_sum(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut it = xs.chunks_exact(LANES);
    for p in &mut it {
        let p: &[f32; LANES] = p.try_into().unwrap();
        for l in 0..LANES {
            acc[l] += p[l];
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for &x in it.remainder() {
        s += x;
    }
    s
}

/// The widest SIMD tier the multiversioned kernels dispatch to on this
/// machine: `"avx512"`, `"avx2"`, `"neon"`, or `"scalar"`. Mirrors the
/// detection order of every dispatch site in this module and in
/// [`crate::Matrix`], so bench rows and logs can be labelled with the tier
/// that actually ran. The tier affects speed only — all tiers are
/// bit-identical by construction.
pub fn active_simd_tier() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return "avx512";
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        return "neon";
    }
    "scalar"
}

/// Numerically-stable in-place softmax using [`fast_exp`], structured as
/// separate vectorizable passes (lane-folded max, exponentiate, lane-folded
/// sum, scale by reciprocal), dispatched to an AVX2-compiled copy on
/// capable CPUs. Semantics match [`stable_softmax_in_place`] up to the
/// approximation and reassociation error: a fully-`-inf` row becomes all
/// zeros, and `-inf` entries in a mixed row receive weight ≲ 1e-38
/// (exactly zero in the seed kernel). Every pass runs in a fixed order
/// that depends only on the slice length, so results are deterministic.
pub fn stable_softmax_fast_in_place(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was just verified at runtime.
            return unsafe { softmax_fast_avx512(logits) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { softmax_fast_avx2(logits) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON support was just verified at runtime.
        return unsafe { softmax_fast_neon(logits) };
    }
    softmax_fast_body(logits)
}

/// [`stable_softmax_fast_in_place`]'s body compiled with AVX-512F enabled —
/// the widest x86 tier; same arithmetic in the same order as the baseline
/// body, so results are bit-identical (the tier affects speed only).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn softmax_fast_avx512(logits: &mut [f32]) {
    softmax_fast_body(logits)
}

/// [`stable_softmax_fast_in_place`]'s body compiled with AVX2 enabled; the
/// `#[inline(always)]` body is cloned in so the 8-wide registers apply.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn softmax_fast_avx2(logits: &mut [f32]) {
    softmax_fast_body(logits)
}

/// [`stable_softmax_fast_in_place`]'s body compiled with NEON enabled
/// (aarch64). NEON is baseline on aarch64, but the explicit tier keeps the
/// dispatch table uniform across architectures and survives a no-default
/// target spec.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn softmax_fast_neon(logits: &mut [f32]) {
    softmax_fast_body(logits)
}

#[inline(always)]
fn softmax_fast_body(logits: &mut [f32]) {
    let max = lane_max(logits);
    if max == f32::NEG_INFINITY {
        logits.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    logits.iter_mut().for_each(|v| *v = fast_exp(*v - max));
    let sum = lane_sum(logits);
    if sum > 0.0 {
        let inv = 1.0 / sum;
        logits.iter_mut().for_each(|v| *v *= inv);
    }
}

/// Elementwise `xs[i] ← fast_silu(xs[i])`, multiversioned like
/// [`fast_silu_mul_in_place`] so the [`fast_exp`] chain vectorizes at the
/// caller's full register width (HSTU's gated projections map SiLU over
/// four matrices per layer).
pub fn fast_silu_in_place(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was just verified at runtime.
            return unsafe { fast_silu_in_place_avx512(xs) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { fast_silu_in_place_avx2(xs) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON support was just verified at runtime.
        return unsafe { fast_silu_in_place_neon(xs) };
    }
    fast_silu_in_place_body(xs)
}

/// [`fast_silu_in_place`]'s body compiled with AVX-512F enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn fast_silu_in_place_avx512(xs: &mut [f32]) {
    fast_silu_in_place_body(xs)
}

/// [`fast_silu_in_place`]'s body compiled with AVX2 enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fast_silu_in_place_avx2(xs: &mut [f32]) {
    fast_silu_in_place_body(xs)
}

/// [`fast_silu_in_place`]'s body compiled with NEON enabled (aarch64).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn fast_silu_in_place_neon(xs: &mut [f32]) {
    fast_silu_in_place_body(xs)
}

#[inline(always)]
fn fast_silu_in_place_body(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = fast_silu(*x);
    }
}

/// Fused SwiGLU gate: `acts[i] ← fast_silu(acts[i]) · ups[i]`, the
/// elementwise epilogue between the FFN's gate/up projections and its down
/// projection. One multiversioned pass (AVX2 when available) keeps the
/// [`fast_exp`] chain in vector registers; calling [`fast_silu`] from a
/// scalar `zip` loop in the model crate left it at the SSE2 baseline.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn fast_silu_mul_in_place(acts: &mut [f32], ups: &[f32]) {
    assert_eq!(acts.len(), ups.len(), "silu gate arity mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was just verified at runtime.
            return unsafe { fast_silu_mul_avx512(acts, ups) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { fast_silu_mul_avx2(acts, ups) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON support was just verified at runtime.
        return unsafe { fast_silu_mul_neon(acts, ups) };
    }
    fast_silu_mul_body(acts, ups)
}

/// [`fast_silu_mul_in_place`]'s body compiled with AVX-512F enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn fast_silu_mul_avx512(acts: &mut [f32], ups: &[f32]) {
    fast_silu_mul_body(acts, ups)
}

/// [`fast_silu_mul_in_place`]'s body compiled with AVX2 enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fast_silu_mul_avx2(acts: &mut [f32], ups: &[f32]) {
    fast_silu_mul_body(acts, ups)
}

/// [`fast_silu_mul_in_place`]'s body compiled with NEON enabled (aarch64).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn fast_silu_mul_neon(acts: &mut [f32], ups: &[f32]) {
    fast_silu_mul_body(acts, ups)
}

#[inline(always)]
fn fast_silu_mul_body(acts: &mut [f32], ups: &[f32]) {
    for (a, &u) in acts.iter_mut().zip(ups) {
        *a = fast_silu(*a) * u;
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot arity mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Lane-accumulated dot product: eight independent accumulation chains
/// folded in a fixed tree order (deterministic — the association depends
/// only on the length), dispatched to an AVX2-compiled copy on capable
/// CPUs. Use in hot loops where [`dot`]'s strict left-to-right chain
/// (which the compiler must not reassociate, so it cannot vectorize)
/// would serialize — e.g. the attention value accumulation.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot arity mismatch");
    crate::matrix::dot_unrolled(a, b)
}

/// `out += scale * v` elementwise. Element-independent, so the loop
/// vectorizes as-is; the AVX2 dispatch only widens the registers
/// (identical arithmetic, bit-identical results).
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(out: &mut [f32], scale: f32, v: &[f32]) {
    assert_eq!(out.len(), v.len(), "axpy arity mismatch");
    // Below ~4 vectors the wide clones' call overhead outweighs their
    // registers; every path is the same arithmetic in the same order.
    #[cfg(target_arch = "x86_64")]
    if out.len() >= 32 {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was just verified at runtime.
            return unsafe { axpy_avx512(out, scale, v) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { axpy_avx2(out, scale, v) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    if out.len() >= 32 && std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON support was just verified at runtime.
        return unsafe { axpy_neon(out, scale, v) };
    }
    axpy_body(out, scale, v)
}

/// [`axpy`]'s body compiled with AVX-512F enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_avx512(out: &mut [f32], scale: f32, v: &[f32]) {
    axpy_body(out, scale, v)
}

/// [`axpy`]'s body compiled with AVX2 enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(out: &mut [f32], scale: f32, v: &[f32]) {
    axpy_body(out, scale, v)
}

/// [`axpy`]'s body compiled with NEON enabled (aarch64).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn axpy_neon(out: &mut [f32], scale: f32, v: &[f32]) {
    axpy_body(out, scale, v)
}

#[inline(always)]
fn axpy_body(out: &mut [f32], scale: f32, v: &[f32]) {
    for (o, &x) in out.iter_mut().zip(v) {
        *o += scale * x;
    }
}

/// Fused masked-softmax · V attention epilogue.
///
/// Takes one query's raw score row (`scores[g] = q · k_g`, length
/// `values.rows()`), applies `scale` and the bipartite `allowed` mask,
/// softmax-normalizes in place, and accumulates the probability-weighted
/// value rows into `out` — one pass, no gathered temporaries. Masked (and
/// underflowed) positions carry exactly zero weight and are skipped in the
/// accumulation, matching the seed's gather-then-softmax path bit-for-bit:
/// the masked `exp` terms are exact zeros, and adding `0.0` to a finite
/// partial sum is exact.
///
/// `scores` is clobbered (it holds the attention probabilities on return).
/// `out` is accumulated into, not overwritten, so per-head slices of a
/// wider aggregation buffer can be passed directly. A fully-masked row
/// contributes nothing. `scores` may cover a causal *prefix* of the value
/// rows (`scores.len() <= values.rows()`), so one packed K/V matrix serves
/// every query position.
///
/// # Panics
///
/// Panics if `scores` and `allowed` disagree, if `scores` is longer than
/// `values.rows()`, or if `out.len() != values.cols()`.
pub fn fused_masked_softmax_av(
    scores: &mut [f32],
    allowed: &[bool],
    scale: f32,
    values: &Matrix,
    out: &mut [f32],
) {
    assert_eq!(scores.len(), allowed.len(), "mask arity mismatch");
    assert!(
        scores.len() <= values.rows(),
        "scores/values arity mismatch"
    );
    assert_eq!(out.len(), values.cols(), "output arity mismatch");
    for (v, &ok) in scores.iter_mut().zip(allowed) {
        *v = if ok { *v * scale } else { f32::NEG_INFINITY };
    }
    stable_softmax_in_place(scores);
    for (g, &w) in scores.iter().enumerate() {
        if w != 0.0 {
            axpy(out, w, values.row(g));
        }
    }
}

/// Fused SiLU-gated attention epilogue (HSTU-style pointwise attention).
///
/// For each allowed position `g`, computes `w = silu(scores[g] · scale)`
/// and accumulates `w · values.row(g)` into `out`. Unlike softmax
/// attention there is no normalization across positions here — HSTU
/// divides by the allowed-position count at a wider scope (across all
/// heads), so the caller owns that step.
///
/// `scores` is clobbered (masked slots are zeroed, allowed slots hold the
/// SiLU weight on return). `out` is accumulated into. As with
/// [`fused_masked_softmax_av`], `scores` may cover a causal prefix of the
/// value rows.
///
/// # Panics
///
/// Panics if `scores` and `allowed` disagree, if `scores` is longer than
/// `values.rows()`, or if `out.len() != values.cols()`.
pub fn fused_silu_av(
    scores: &mut [f32],
    allowed: &[bool],
    scale: f32,
    values: &Matrix,
    out: &mut [f32],
) {
    assert_eq!(scores.len(), allowed.len(), "mask arity mismatch");
    assert!(
        scores.len() <= values.rows(),
        "scores/values arity mismatch"
    );
    assert_eq!(out.len(), values.cols(), "output arity mismatch");
    for (g, (v, &ok)) in scores.iter_mut().zip(allowed).enumerate() {
        if !ok {
            *v = 0.0;
            continue;
        }
        let w = silu(*v * scale);
        *v = w;
        axpy(out, w, values.row(g));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut v = vec![0.5f32, 1.5, -2.0];
        stable_softmax_in_place(&mut v);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(v[1] > v[0] && v[0] > v[2]);
    }

    #[test]
    fn softmax_survives_huge_logits() {
        let mut v = vec![1e30f32, 1e30, 0.0];
        stable_softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fully_masked_row_is_zero() {
        let mut v = vec![3.0f32, 1.0];
        softmax_masked_in_place(&mut v, &[false, false]);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn mask_zeroes_disallowed_positions() {
        let mut v = vec![1.0f32, 5.0, 1.0];
        softmax_masked_in_place(&mut v, &[true, false, true]);
        assert_eq!(v[1], 0.0);
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!((v[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_softmax_is_noop() {
        let mut v: Vec<f32> = vec![];
        stable_softmax_in_place(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn rms_norm_produces_unit_scale() {
        let x = vec![3.0f32, 4.0];
        let g = vec![1.0f32, 1.0];
        let y = rms_norm(&x, &g, 1e-6);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((y[0] - 3.0 / rms).abs() < 1e-5);
        assert!((y[1] - 4.0 / rms).abs() < 1e-5);
    }

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0f32, 2.0];
        axpy(&mut out, 2.0, &[0.5, 0.5]);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn fused_softmax_av_matches_gathered_reference() {
        // Reference: gather allowed scores, softmax the short vector, axpy.
        let values = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, -1.0], &[0.5, 0.5]]);
        let raw = [0.3f32, -1.2, 0.8, 2.0];
        let allowed = [true, false, true, true];
        let scale = 0.7;

        let mut gathered: Vec<f32> = raw
            .iter()
            .zip(&allowed)
            .filter(|(_, &ok)| ok)
            .map(|(&s, _)| s * scale)
            .collect();
        stable_softmax_in_place(&mut gathered);
        let mut want = vec![0.0f32; 2];
        let mut gi = 0;
        for (g, &ok) in allowed.iter().enumerate() {
            if ok {
                axpy(&mut want, gathered[gi], values.row(g));
                gi += 1;
            }
        }

        let mut scores = raw;
        let mut got = vec![0.0f32; 2];
        fused_masked_softmax_av(&mut scores, &allowed, scale, &values, &mut got);
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() < 1e-6, "want {w}, got {g}");
        }
        assert_eq!(scores[1], 0.0, "masked slot must carry zero weight");
    }

    #[test]
    fn fused_softmax_av_fully_masked_is_noop() {
        let values = Matrix::identity(3);
        let mut scores = [5.0f32, -2.0, 0.1];
        let mut out = vec![7.0f32, 7.0, 7.0];
        fused_masked_softmax_av(&mut scores, &[false, false, false], 1.0, &values, &mut out);
        assert_eq!(out, vec![7.0, 7.0, 7.0]);
        assert_eq!(scores, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn fused_softmax_av_accumulates_into_out() {
        let values = Matrix::from_rows(&[&[2.0]]);
        let mut scores = [1.0f32];
        let mut out = vec![10.0f32];
        fused_masked_softmax_av(&mut scores, &[true], 1.0, &values, &mut out);
        // Single allowed position → weight 1.0 → out += 2.0.
        assert!((out[0] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn fused_silu_av_matches_scalar_loop() {
        let values = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let raw = [0.5f32, -0.25, 1.5];
        let allowed = [true, true, false];
        let scale = 0.4;

        let mut want = vec![0.0f32; 2];
        for (g, &ok) in allowed.iter().enumerate() {
            if ok {
                axpy(&mut want, silu(raw[g] * scale), values.row(g));
            }
        }

        let mut scores = raw;
        let mut got = vec![0.0f32; 2];
        fused_silu_av(&mut scores, &allowed, scale, &values, &mut got);
        assert_eq!(want, got);
        assert_eq!(scores[2], 0.0);
    }

    #[test]
    fn fast_exp_tracks_libm_exp() {
        let mut x = -20.0f32;
        while x <= 20.0 {
            let want = x.exp();
            let got = fast_exp(x);
            assert!(
                (got - want).abs() <= want * 3e-7 + 1e-30,
                "fast_exp({x}) = {got}, libm = {want}"
            );
            x += 0.0137;
        }
        assert_eq!(fast_exp(0.0), 1.0);
        assert!(fast_exp(f32::NEG_INFINITY) < 1e-36);
        assert!(fast_exp(1000.0).is_finite(), "clamped, not overflowed");
    }

    #[test]
    fn fast_silu_tracks_silu() {
        let mut x = -15.0f32;
        while x <= 15.0 {
            assert!((fast_silu(x) - silu(x)).abs() < 1e-5, "at {x}");
            x += 0.0731;
        }
    }

    #[test]
    fn dot_fast_tracks_dot() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32 * 0.21).cos()).collect();
        assert!((dot_fast(&a, &b) - dot(&a, &b)).abs() < 1e-4);
        assert_eq!(dot_fast(&[], &[]), 0.0);
        assert_eq!(dot_fast(&[2.0, 3.0], &[4.0, 5.0]), 23.0);
    }

    #[test]
    fn fast_silu_mul_matches_scalar_gate() {
        let mut acts: Vec<f32> = (0..37).map(|i| (i as f32 * 0.43).sin() * 3.0).collect();
        let ups: Vec<f32> = (0..37).map(|i| (i as f32 * 0.29).cos()).collect();
        let want: Vec<f32> = acts
            .iter()
            .zip(&ups)
            .map(|(&a, &u)| fast_silu(a) * u)
            .collect();
        fast_silu_mul_in_place(&mut acts, &ups);
        for (g, w) in acts.iter().zip(&want) {
            assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    fn lane_reductions_match_serial_folds() {
        for n in [0usize, 1, 7, 8, 9, 63, 250] {
            let xs: Vec<f32> = (0..n).map(|i| ((i * 37) % 23) as f32 * 0.7 - 5.0).collect();
            let serial_max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(lane_max(&xs), serial_max, "max over {n}");
            let serial_sum: f32 = xs.iter().sum();
            assert!((lane_sum(&xs) - serial_sum).abs() < 1e-3, "sum over {n}");
        }
    }

    #[test]
    fn fast_softmax_tracks_seed_softmax() {
        let mut a: Vec<f32> = (0..64)
            .map(|i| ((i * 37) % 19) as f32 * 0.3 - 2.0)
            .collect();
        let mut b = a.clone();
        stable_softmax_in_place(&mut a);
        stable_softmax_fast_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        // Fully-masked and mixed -inf rows behave like the seed kernel.
        let mut v = vec![f32::NEG_INFINITY; 3];
        stable_softmax_fast_in_place(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 0.0]);
        let mut v = vec![1.0, f32::NEG_INFINITY, 1.0];
        stable_softmax_fast_in_place(&mut v);
        assert!(v[1] < 1e-36 && (v[0] - 0.5).abs() < 1e-6);
    }

    /// Pins the elementwise kernels' per-architecture clones directly
    /// against the baseline bodies: the public dispatchers prefer the
    /// widest tier, so the narrower clones need their own coverage. Every
    /// tier present on this CPU must be bit-identical.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_x86_tier_is_bit_identical_to_baseline() {
        let src: Vec<f32> = (0..131).map(|i| (i as f32 * 0.37).sin() * 9.0).collect();
        let ups: Vec<f32> = (0..131).map(|i| (i as f32 * 0.23).cos()).collect();
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

        let mut soft_gold = src.clone();
        softmax_fast_body(&mut soft_gold);
        let mut silu_gold = src.clone();
        fast_silu_in_place_body(&mut silu_gold);
        let mut gate_gold = src.clone();
        fast_silu_mul_body(&mut gate_gold, &ups);
        let mut axpy_gold = ups.clone();
        axpy_body(&mut axpy_gold, 1.7, &src);

        if std::arch::is_x86_feature_detected!("avx512f") {
            let (mut s, mut g, mut m, mut a) = (src.clone(), src.clone(), src.clone(), ups.clone());
            // SAFETY: AVX-512F support was just verified at runtime.
            unsafe {
                softmax_fast_avx512(&mut s);
                fast_silu_in_place_avx512(&mut g);
                fast_silu_mul_avx512(&mut m, &ups);
                axpy_avx512(&mut a, 1.7, &src);
            }
            assert_eq!(bits(&s), bits(&soft_gold), "avx512f softmax");
            assert_eq!(bits(&g), bits(&silu_gold), "avx512f silu");
            assert_eq!(bits(&m), bits(&gate_gold), "avx512f silu-mul");
            assert_eq!(bits(&a), bits(&axpy_gold), "avx512f axpy");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            let (mut s, mut g, mut m, mut a) = (src.clone(), src.clone(), src.clone(), ups.clone());
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe {
                softmax_fast_avx2(&mut s);
                fast_silu_in_place_avx2(&mut g);
                fast_silu_mul_avx2(&mut m, &ups);
                axpy_avx2(&mut a, 1.7, &src);
            }
            assert_eq!(bits(&s), bits(&soft_gold), "avx2 softmax");
            assert_eq!(bits(&g), bits(&silu_gold), "avx2 silu");
            assert_eq!(bits(&m), bits(&gate_gold), "avx2 silu-mul");
            assert_eq!(bits(&a), bits(&axpy_gold), "avx2 axpy");
        }
    }

    proptest! {
        /// Whatever tier the host dispatches to, the fast softmax is
        /// bit-identical to the baseline body for arbitrary rows.
        #[test]
        fn softmax_dispatch_is_bit_identical(
            xs in proptest::collection::vec(-40.0f32..40.0, 1..180),
        ) {
            let mut dispatched = xs.clone();
            stable_softmax_fast_in_place(&mut dispatched);
            let mut baseline = xs;
            softmax_fast_body(&mut baseline);
            for (d, b) in dispatched.iter().zip(&baseline) {
                prop_assert_eq!(d.to_bits(), b.to_bits());
            }
        }

        /// Softmax is invariant to adding a constant to all logits.
        #[test]
        fn softmax_shift_invariance(xs in proptest::collection::vec(-20.0f32..20.0, 1..16), shift in -50.0f32..50.0) {
            let mut a = xs.clone();
            let mut b: Vec<f32> = xs.iter().map(|v| v + shift).collect();
            stable_softmax_in_place(&mut a);
            stable_softmax_in_place(&mut b);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Softmax output is a probability distribution.
        #[test]
        fn softmax_is_distribution(xs in proptest::collection::vec(-30.0f32..30.0, 1..32)) {
            let mut v = xs;
            stable_softmax_in_place(&mut v);
            prop_assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
            prop_assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }

        /// RMSNorm output has RMS ≈ 1 when gain is all-ones.
        #[test]
        fn rms_norm_unit_rms(xs in proptest::collection::vec(-10.0f32..10.0, 2..32)) {
            // Avoid the degenerate all-zeros vector.
            prop_assume!(xs.iter().any(|v| v.abs() > 1e-3));
            let g = vec![1.0f32; xs.len()];
            let y = rms_norm(&xs, &g, 1e-8);
            let rms = (y.iter().map(|v| v * v).sum::<f32>() / y.len() as f32).sqrt();
            prop_assert!((rms - 1.0).abs() < 1e-2);
        }
    }
}
