//! A row-major `f32` matrix.

use rand::Rng;

/// A dense row-major matrix of `f32` values.
///
/// ```
/// use bat_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// assert_eq!(m.get(1, 1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with entries drawn i.i.d. from
    /// `Uniform(-scale, scale)`; used for seeded weight initialization.
    pub fn random<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Reshapes to `rows × cols` and zeroes every entry, keeping the
    /// backing allocation when it is large enough. The workspace primitive:
    /// a scratch matrix `reset` each layer/request stops allocating once it
    /// has seen its steady-state shape.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self × rhs`.
    ///
    /// This is the workhorse kernel of the batched forward pass. It is an
    /// *axpy-form* product: for each output row the `k` loop walks rows of
    /// `rhs` (both operands stream contiguously, no transposition or
    /// packing), folding four rhs rows into the accumulator per pass so
    /// each output load/store is amortized over four multiply-adds — the
    /// same fold as [`Matrix::vecmul`], which measures ~1.6× the
    /// column-at-a-time naive loop. The `j` loop is element-wise
    /// independent, so the compiler vectorizes it without reassociating
    /// any sum. Output row blocks run in parallel on [`bat_exec`]; each
    /// row is written by exactly one task in a fixed fold order, so the
    /// result is bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a caller-owned output matrix, which
    /// is resized (capacity kept) and zeroed — the zero-allocation twin the
    /// forward workspace reuses across layers and requests. Same kernel,
    /// same fold order, bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (n, k, m) = (self.rows, self.cols, rhs.cols);
        out.reset(n, m);
        if n == 0 || m == 0 || k == 0 {
            return;
        }
        // Below this many multiply-adds the pool dispatch overhead exceeds
        // the kernel cost; run inline.
        const PAR_MACS: usize = 32 * 1024;
        let grain_rows = if n * m * k >= PAR_MACS { 1 } else { usize::MAX };
        bat_exec::parallel_row_blocks(&mut out.data, m, grain_rows, |first_row, block| {
            let n_block = block.len() / m;
            // Quad-block the output rows: four rows share every rhs-row
            // load, so the streamed operand's cache traffic drops 4× (the
            // single-row fold re-reads the whole rhs per output row, which
            // makes the kernel L2-bandwidth-bound at these shapes). Each
            // row's accumulation chain is unchanged, so a row computes the
            // same bits whether it lands in a quad or the tail — block
            // boundaries (which move with the thread count) cannot change
            // results.
            let mut r = 0;
            while r + 4 <= n_block {
                fold_rows_into_x4(
                    &mut block[r * m..(r + 4) * m],
                    [
                        self.row(first_row + r),
                        self.row(first_row + r + 1),
                        self.row(first_row + r + 2),
                        self.row(first_row + r + 3),
                    ],
                    rhs,
                );
                r += 4;
            }
            while r < n_block {
                fold_rows_into(&mut block[r * m..(r + 1) * m], self.row(first_row + r), rhs);
                r += 1;
            }
        });
    }

    /// Matrix product `self × rhsᵀ` with `rhs` stored row-major (i.e. `rhs`
    /// is the *transposed-packed* right operand: `out[i][j] =
    /// dot(self.row(i), rhs.row(j))`).
    ///
    /// Use this when the right operand is *naturally* stored transposed
    /// (e.g. attention keys packed row-per-key): both operands stream
    /// contiguously, the inner kernel computes two lane-accumulated dot
    /// products per pass (register blocking — see [`dot_unrolled_x2`])
    /// with no per-element branch, the `j` loop is tiled so a block of
    /// `rhs` rows stays cache-hot across output rows, and output row
    /// blocks are computed in parallel on [`bat_exec`]. Every output
    /// element is one fixed-order dot product written by exactly one task,
    /// so the result is bit-identical for any thread count. For an
    /// untransposed right operand, [`Matrix::matmul`]'s axpy kernel is
    /// faster — dot-form products pay a horizontal reduction per element —
    /// so above a size threshold this un-packs `rhs` and delegates to it
    /// (the copy amortizes; the threshold depends only on the shapes, so
    /// results stay deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()` (the shared inner dimension).
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} × ({}x{})T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (n, k, m) = (self.rows, self.cols, rhs.rows);
        // Past this many multiply-adds the O(m·k) un-packing copy is noise
        // next to the O(n·m·k) kernel and the axpy form's throughput wins.
        const NT_UNPACK_MACS: usize = 64 * 1024;
        if n * m * k >= NT_UNPACK_MACS {
            return self.matmul(&rhs.transpose());
        }
        let mut out = Matrix::zeros(n, m);
        if n == 0 || m == 0 || k == 0 {
            return out;
        }
        // Rows-per-tile of the packed operand kept hot in L1 across output
        // rows; 16 rows × 256 columns of f32 is 16 KiB.
        const J_TILE: usize = 16;
        // Below this many multiply-adds the pool dispatch overhead exceeds
        // the kernel cost; run inline.
        const PAR_MACS: usize = 32 * 1024;
        let grain_rows = if n * m * k >= PAR_MACS { 1 } else { usize::MAX };
        bat_exec::parallel_row_blocks(&mut out.data, m, grain_rows, |first_row, block| {
            let n_block = block.len() / m;
            for j0 in (0..m).step_by(J_TILE) {
                let j1 = (j0 + J_TILE).min(m);
                for r in 0..n_block {
                    let a_row = self.row(first_row + r);
                    let out_row = &mut block[r * m..(r + 1) * m];
                    // Register-blocked: two packed rows per pass share each
                    // `a_row` load, then a single mops up an odd tile edge.
                    let mut j = j0;
                    while j + 2 <= j1 {
                        out_row[j..j + 2].copy_from_slice(&dot_unrolled_x2(
                            a_row,
                            rhs.row(j),
                            rhs.row(j + 1),
                        ));
                        j += 2;
                    }
                    if j < j1 {
                        out_row[j] = dot_unrolled(a_row, rhs.row(j));
                    }
                }
            }
        });
        out
    }

    /// `vec × self` where `vec` has length `self.rows()`; returns a vector of
    /// length `self.cols()`. This is the hot path of the per-token forward
    /// pass (hidden-state row times weight matrix).
    ///
    /// Dense kernel: four input rows are folded into the accumulator per
    /// pass with no per-element zero test (the seed's skip branch
    /// mispredicts on dense data and defeats pipelining). Accumulation
    /// order per output column is the plain ascending-`k` order, so results
    /// match the naive loop bit-for-bit on inputs without `-0.0` rows. For
    /// operands that are *provably* mostly zero, use
    /// [`Matrix::vecmul_sparse`].
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.rows()`.
    pub fn vecmul(&self, vec: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.vecmul_into(vec, &mut out);
        out
    }

    /// [`Matrix::vecmul`] writing into a caller-owned vector (cleared,
    /// resized keeping capacity). Same kernel, bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.rows()`.
    pub fn vecmul_into(&self, vec: &[f32], out: &mut Vec<f32>) {
        assert_eq!(vec.len(), self.rows, "vecmul shape mismatch");
        out.clear();
        out.resize(self.cols, 0.0);
        fold_rows_into(out, vec, self);
    }

    /// Sparse-aware `vec × self`: skips rows whose coefficient is exactly
    /// zero. Use only where the input is provably sparse (e.g. activations
    /// after an exact-zero gate); on dense data the per-element branch makes
    /// this strictly slower than [`Matrix::vecmul`]. Semantics match the
    /// seed kernel: a zero coefficient contributes nothing, so `-0.0`
    /// accumulator states are preserved rather than flushed to `+0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.rows()`.
    pub fn vecmul_sparse(&self, vec: &[f32]) -> Vec<f32> {
        assert_eq!(vec.len(), self.rows, "vecmul shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (k, &a) in vec.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (o, &b) in out.iter_mut().zip(self.row(k)) {
                *o += a * b;
            }
        }
        out
    }

    /// The seed's scalar matmul (zero-skip branch, no packing, serial).
    /// Kept as the honest before/after baseline for the perf suite and as
    /// the reference oracle in equivalence tests — not a production path.
    #[doc(hidden)]
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// True if every entry is exactly `0.0` (or `-0.0`). Used to detect
    /// structurally-zero weight matrices (e.g. the routed preset's FFN) so
    /// whole projections can be skipped.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0.0)
    }

    /// Visits every row mutably as `f(row_index, row)`, in parallel row
    /// blocks on [`bat_exec`] when there are at least `grain_rows` rows.
    /// Each row is processed by exactly one task, so results are
    /// bit-identical for any thread count as long as `f` computes each row
    /// independently of the others.
    pub fn par_rows_mut<F>(&mut self, grain_rows: usize, f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        if self.rows == 0 || self.cols == 0 {
            return;
        }
        let cols = self.cols;
        bat_exec::parallel_row_blocks(&mut self.data, cols, grain_rows, |first_row, block| {
            for (off, row) in block.chunks_mut(cols).enumerate() {
                f(first_row + off, row);
            }
        });
    }

    /// `out[c] += ⟨s, row c⟩` over the first `s.len()` columns of each of
    /// the first `out.len()` rows — the attention value accumulation over a
    /// transposed-packed value matrix (`out` is one head's output slice,
    /// `s` the attention weights over a causal window).
    ///
    /// Four rows are reduced per pass sharing each `s` load, every row
    /// carrying its own lane accumulators, so the adds form `4 × LANES`
    /// independent chains — one [`crate::ops::dot_fast`] per row is
    /// *latency*-bound on a single 8-lane chain (~3× slower measured).
    /// Each row still folds in exactly [`fold_lanes`] order, so the result
    /// is bit-identical to calling [`dot_unrolled`] row by row.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() > self.rows()` or `s.len() > self.cols()`.
    pub fn rows_dot_acc(&self, s: &[f32], out: &mut [f32]) {
        assert!(out.len() <= self.rows, "rows_dot_acc row overrun");
        assert!(s.len() <= self.cols, "rows_dot_acc column overrun");
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                // SAFETY: AVX-512F support was just verified at runtime.
                return unsafe { rows_dot_acc_avx512(self, s, out) };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                return unsafe { rows_dot_acc_avx2(self, s, out) };
            }
        }
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            // SAFETY: NEON support was just verified at runtime.
            return unsafe { rows_dot_acc_neon(self, s, out) };
        }
        rows_dot_acc_body(self, s, out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Maximum absolute difference from `other`; `None` if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f32> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max),
        )
    }
}

/// `out[c] += Σ_k coeffs[k] · rhs[k][c]`: the shared axpy inner kernel of
/// [`Matrix::matmul`] and [`Matrix::vecmul`]. Four input rows are folded
/// into the accumulator per pass with no per-element zero test (the seed's
/// skip branch mispredicts on dense data and defeats pipelining); the adds
/// per output column are left-to-right, identical association to
/// accumulating the rows one at a time, so results match the naive loop
/// bit-for-bit on inputs without `-0.0` rows.
///
/// Dispatches to the widest SIMD-compiled copy of the same body the
/// running CPU supports — AVX-512F, then AVX2 on x86-64 (whose baseline is
/// SSE2, i.e. 4-wide vectors), NEON on aarch64. Every copy performs the
/// *same* multiplies and adds in the same order — no FMA contraction, no
/// reassociation — so the dispatch affects speed only and results stay
/// bit-identical across CPUs and architectures.
#[inline]
fn fold_rows_into(out: &mut [f32], coeffs: &[f32], rhs: &Matrix) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was just verified at runtime.
            return unsafe { fold_rows_into_avx512(out, coeffs, rhs) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { fold_rows_into_avx2(out, coeffs, rhs) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON support was just verified at runtime.
        return unsafe { fold_rows_into_neon(out, coeffs, rhs) };
    }
    fold_rows_into_body(out, coeffs, rhs)
}

/// The [`fold_rows_into`] body compiled with AVX-512F enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn fold_rows_into_avx512(out: &mut [f32], coeffs: &[f32], rhs: &Matrix) {
    fold_rows_into_body(out, coeffs, rhs)
}

/// The [`fold_rows_into`] body compiled with NEON enabled (aarch64).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn fold_rows_into_neon(out: &mut [f32], coeffs: &[f32], rhs: &Matrix) {
    fold_rows_into_body(out, coeffs, rhs)
}

/// The [`fold_rows_into`] body compiled with AVX2 enabled. `#[inline
/// (always)]` on the body guarantees it is cloned into this function (a
/// non-inlined call would be codegen'd at the crate's SSE2 baseline and
/// the wider registers would never materialize).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fold_rows_into_avx2(out: &mut [f32], coeffs: &[f32], rhs: &Matrix) {
    fold_rows_into_body(out, coeffs, rhs)
}

#[inline(always)]
fn fold_rows_into_body(out: &mut [f32], coeffs: &[f32], rhs: &Matrix) {
    let cols = rhs.cols;
    let out = &mut out[..cols];
    let mut k = 0;
    // Eight rows per pass: each output load/store is amortized over eight
    // multiply-adds (the fold is load-port-bound, so fewer accumulator
    // round-trips per MAC is the lever). The sum per output column is
    // still evaluated left-to-right, identical association to folding the
    // rows one at a time, so shrinking or growing the fold width never
    // changes a single bit.
    while k + 8 <= coeffs.len() {
        let (a0, a1, a2, a3) = (coeffs[k], coeffs[k + 1], coeffs[k + 2], coeffs[k + 3]);
        let (a4, a5, a6, a7) = (coeffs[k + 4], coeffs[k + 5], coeffs[k + 6], coeffs[k + 7]);
        let r0 = &rhs.row(k)[..cols];
        let r1 = &rhs.row(k + 1)[..cols];
        let r2 = &rhs.row(k + 2)[..cols];
        let r3 = &rhs.row(k + 3)[..cols];
        let r4 = &rhs.row(k + 4)[..cols];
        let r5 = &rhs.row(k + 5)[..cols];
        let r6 = &rhs.row(k + 6)[..cols];
        let r7 = &rhs.row(k + 7)[..cols];
        for c in 0..cols {
            out[c] = out[c]
                + a0 * r0[c]
                + a1 * r1[c]
                + a2 * r2[c]
                + a3 * r3[c]
                + a4 * r4[c]
                + a5 * r5[c]
                + a6 * r6[c]
                + a7 * r7[c];
        }
        k += 8;
    }
    while k + 4 <= coeffs.len() {
        let (a0, a1, a2, a3) = (coeffs[k], coeffs[k + 1], coeffs[k + 2], coeffs[k + 3]);
        let r0 = &rhs.row(k)[..cols];
        let r1 = &rhs.row(k + 1)[..cols];
        let r2 = &rhs.row(k + 2)[..cols];
        let r3 = &rhs.row(k + 3)[..cols];
        for c in 0..cols {
            out[c] = out[c] + a0 * r0[c] + a1 * r1[c] + a2 * r2[c] + a3 * r3[c];
        }
        k += 4;
    }
    while k < coeffs.len() {
        let a = coeffs[k];
        for (o, &b) in out.iter_mut().zip(rhs.row(k)) {
            *o += a * b;
        }
        k += 1;
    }
}

/// Folds `rhs` into **four** contiguous output rows in one pass:
/// `out4[r][c] += Σ_k coeffs[r][k] · rhs[k][c]` for `r in 0..4`, where
/// `out4` is four back-to-back rows of `rhs.cols` elements. Every rhs row
/// loaded is applied to all four outputs, so the streamed operand's cache
/// traffic is a quarter of running [`fold_rows_into`] four times — the
/// lever for large matmuls whose rhs lives in L2 while four output rows
/// stay L1-resident. Each output column's sum is still evaluated
/// left-to-right over `k`, the same association as the single-row fold,
/// so a row produces identical bits through either kernel.
#[inline]
fn fold_rows_into_x4(out4: &mut [f32], coeffs: [&[f32]; 4], rhs: &Matrix) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was just verified at runtime.
            return unsafe { fold_rows_into_x4_avx512(out4, coeffs, rhs) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { fold_rows_into_x4_avx2(out4, coeffs, rhs) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON support was just verified at runtime.
        return unsafe { fold_rows_into_x4_neon(out4, coeffs, rhs) };
    }
    fold_rows_into_x4_body(out4, coeffs, rhs)
}

/// [`fold_rows_into_x4`]'s body compiled with AVX-512F enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn fold_rows_into_x4_avx512(out4: &mut [f32], coeffs: [&[f32]; 4], rhs: &Matrix) {
    fold_rows_into_x4_body(out4, coeffs, rhs)
}

/// [`fold_rows_into_x4`]'s body compiled with NEON enabled (aarch64).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn fold_rows_into_x4_neon(out4: &mut [f32], coeffs: [&[f32]; 4], rhs: &Matrix) {
    fold_rows_into_x4_body(out4, coeffs, rhs)
}

/// [`fold_rows_into_x4`]'s body compiled with AVX2 enabled (see
/// [`fold_rows_into_avx2`] for why the body must be `#[inline(always)]`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fold_rows_into_x4_avx2(out4: &mut [f32], coeffs: [&[f32]; 4], rhs: &Matrix) {
    fold_rows_into_x4_body(out4, coeffs, rhs)
}

#[inline(always)]
fn fold_rows_into_x4_body(out4: &mut [f32], coeffs: [&[f32]; 4], rhs: &Matrix) {
    let cols = rhs.cols;
    let klen = coeffs[0].len();
    let [c0, c1, c2, c3] = coeffs;
    let (o01, o23) = out4[..4 * cols].split_at_mut(2 * cols);
    let (o0, o1) = o01.split_at_mut(cols);
    let (o2, o3) = o23.split_at_mut(cols);
    let mut k = 0;
    // Two rhs rows per pass: 4 accumulator vectors + 2 rhs vectors + 8
    // broadcast scalars stays inside the 16 ymm registers; deeper k would
    // spill. Adds per output column are left-to-right, so pass depth never
    // changes a bit.
    while k + 2 <= klen {
        let r0 = &rhs.row(k)[..cols];
        let r1 = &rhs.row(k + 1)[..cols];
        let (a00, a01) = (c0[k], c0[k + 1]);
        let (a10, a11) = (c1[k], c1[k + 1]);
        let (a20, a21) = (c2[k], c2[k + 1]);
        let (a30, a31) = (c3[k], c3[k + 1]);
        for c in 0..cols {
            let b0 = r0[c];
            let b1 = r1[c];
            o0[c] = o0[c] + a00 * b0 + a01 * b1;
            o1[c] = o1[c] + a10 * b0 + a11 * b1;
            o2[c] = o2[c] + a20 * b0 + a21 * b1;
            o3[c] = o3[c] + a30 * b0 + a31 * b1;
        }
        k += 2;
    }
    if k < klen {
        let r0 = &rhs.row(k)[..cols];
        let (a0, a1, a2, a3) = (c0[k], c1[k], c2[k], c3[k]);
        for c in 0..cols {
            let b0 = r0[c];
            o0[c] += a0 * b0;
            o1[c] += a1 * b0;
            o2[c] += a2 * b0;
            o3[c] += a3 * b0;
        }
    }
}

/// [`Matrix::rows_dot_acc`]'s body compiled with AVX2 enabled (see
/// [`fold_rows_into_avx2`] for why the body must be `#[inline(always)]`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rows_dot_acc_avx2(m: &Matrix, s: &[f32], out: &mut [f32]) {
    rows_dot_acc_body(m, s, out)
}

/// [`Matrix::rows_dot_acc`]'s body compiled with AVX-512F enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn rows_dot_acc_avx512(m: &Matrix, s: &[f32], out: &mut [f32]) {
    rows_dot_acc_body(m, s, out)
}

/// [`Matrix::rows_dot_acc`]'s body compiled with NEON enabled (aarch64).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn rows_dot_acc_neon(m: &Matrix, s: &[f32], out: &mut [f32]) {
    rows_dot_acc_body(m, s, out)
}

#[inline(always)]
fn rows_dot_acc_body(m: &Matrix, s: &[f32], out: &mut [f32]) {
    let n = s.len();
    let main = n / LANES * LANES;
    let mut c = 0;
    while c + 4 <= out.len() {
        let r0 = &m.row(c)[..n];
        let r1 = &m.row(c + 1)[..n];
        let r2 = &m.row(c + 2)[..n];
        let r3 = &m.row(c + 3)[..n];
        let mut a0 = [0.0f32; LANES];
        let mut a1 = [0.0f32; LANES];
        let mut a2 = [0.0f32; LANES];
        let mut a3 = [0.0f32; LANES];
        for i in (0..main).step_by(LANES) {
            let ps: &[f32; LANES] = s[i..i + LANES].try_into().unwrap();
            let p0: &[f32; LANES] = r0[i..i + LANES].try_into().unwrap();
            let p1: &[f32; LANES] = r1[i..i + LANES].try_into().unwrap();
            let p2: &[f32; LANES] = r2[i..i + LANES].try_into().unwrap();
            let p3: &[f32; LANES] = r3[i..i + LANES].try_into().unwrap();
            for l in 0..LANES {
                a0[l] += ps[l] * p0[l];
                a1[l] += ps[l] * p1[l];
                a2[l] += ps[l] * p2[l];
                a3[l] += ps[l] * p3[l];
            }
        }
        let st = &s[main..];
        out[c] += fold_lanes(a0, st, &r0[main..]);
        out[c + 1] += fold_lanes(a1, st, &r1[main..]);
        out[c + 2] += fold_lanes(a2, st, &r2[main..]);
        out[c + 3] += fold_lanes(a3, st, &r3[main..]);
        c += 4;
    }
    while c < out.len() {
        out[c] += dot_unrolled_body(s, &m.row(c)[..n]);
        c += 1;
    }
}

/// SIMD lane width of the dot kernels. Eight independent f32 accumulator
/// lanes map onto one AVX/NEON-pair vector register, and because each lane
/// is its own addition chain the compiler can vectorize the loop without
/// reassociating any sum.
pub(crate) const LANES: usize = 8;

/// Fixed-order horizontal reduction of the lane accumulators plus the
/// ascending scalar tail — a pure function of the length, so every dot
/// kernel below is deterministic regardless of where it runs.
#[inline]
pub(crate) fn fold_lanes(acc: [f32; LANES], a_tail: &[f32], b_tail: &[f32]) -> f32 {
    let mut sum = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (x, y) in a_tail.iter().zip(b_tail) {
        sum += x * y;
    }
    sum
}

/// Lane-accumulated dot product (vectorizable, deterministic). Dispatches
/// to an AVX2 copy of the same body on capable CPUs — identical arithmetic
/// in identical order, so the result is bit-identical either way. Exposed
/// to `bat-model` (as `ops::dot_fast`) for the attention value
/// accumulation, where the strict serial chain of [`crate::ops::dot`]
/// cannot vectorize.
#[inline]
pub(crate) fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    // Below ~4 chunks the wide clones' call overhead outweighs their
    // registers; the inlined baseline body is the same arithmetic in the
    // same order, so the cutoff never changes a result bit.
    #[cfg(target_arch = "x86_64")]
    if a.len() >= 4 * LANES {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was just verified at runtime.
            return unsafe { dot_unrolled_avx512(a, b) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { dot_unrolled_avx2(a, b) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    if a.len() >= 4 * LANES && std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON support was just verified at runtime.
        return unsafe { dot_unrolled_neon(a, b) };
    }
    dot_unrolled_body(a, b)
}

/// [`dot_unrolled`]'s body compiled with AVX-512F enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot_unrolled_avx512(a: &[f32], b: &[f32]) -> f32 {
    dot_unrolled_body(a, b)
}

/// [`dot_unrolled`]'s body compiled with NEON enabled (aarch64).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_unrolled_neon(a: &[f32], b: &[f32]) -> f32 {
    dot_unrolled_body(a, b)
}

/// [`dot_unrolled`]'s body compiled with AVX2 enabled (see
/// [`fold_rows_into_avx2`] for why the body must be `#[inline(always)]`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_unrolled_avx2(a: &[f32], b: &[f32]) -> f32 {
    dot_unrolled_body(a, b)
}

#[inline(always)]
fn dot_unrolled_body(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (pa, pb) in (&mut ca).zip(&mut cb) {
        let pa: &[f32; LANES] = pa.try_into().unwrap();
        let pb: &[f32; LANES] = pb.try_into().unwrap();
        for l in 0..LANES {
            acc[l] += pa[l] * pb[l];
        }
    }
    fold_lanes(acc, ca.remainder(), cb.remainder())
}

/// Two lane-accumulated dot products of `a` against `b0`/`b1` in one pass:
/// the register-blocked heart of [`Matrix::matmul_nt`]. Sharing each `a`
/// chunk across two packed rows halves the load traffic per multiply; two
/// blocks (4 lane arrays + 3 operand chunks) is as far as blocking goes
/// before the accumulators spill out of a 16-register SIMD file. Each
/// output reduces in exactly [`fold_lanes`] order, so the result is
/// bit-identical to two separate [`dot_unrolled`] calls.
#[inline]
fn dot_unrolled_x2(a: &[f32], b0: &[f32], b1: &[f32]) -> [f32; 2] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: AVX-512F support was just verified at runtime.
            return unsafe { dot_unrolled_x2_avx512(a, b0, b1) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            return unsafe { dot_unrolled_x2_avx2(a, b0, b1) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: NEON support was just verified at runtime.
        return unsafe { dot_unrolled_x2_neon(a, b0, b1) };
    }
    dot_unrolled_x2_body(a, b0, b1)
}

/// [`dot_unrolled_x2`]'s body compiled with AVX-512F enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot_unrolled_x2_avx512(a: &[f32], b0: &[f32], b1: &[f32]) -> [f32; 2] {
    dot_unrolled_x2_body(a, b0, b1)
}

/// [`dot_unrolled_x2`]'s body compiled with NEON enabled (aarch64).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_unrolled_x2_neon(a: &[f32], b0: &[f32], b1: &[f32]) -> [f32; 2] {
    dot_unrolled_x2_body(a, b0, b1)
}

/// [`dot_unrolled_x2`]'s body compiled with AVX2 enabled (see
/// [`fold_rows_into_avx2`] for why the body must be `#[inline(always)]`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_unrolled_x2_avx2(a: &[f32], b0: &[f32], b1: &[f32]) -> [f32; 2] {
    dot_unrolled_x2_body(a, b0, b1)
}

#[inline(always)]
fn dot_unrolled_x2_body(a: &[f32], b0: &[f32], b1: &[f32]) -> [f32; 2] {
    // Equal-length reslices let the optimizer prove every chunk below is
    // in-bounds (the rows all share `a`'s length, but the compiler cannot
    // know that from the signature).
    let n = a.len();
    let (b0, b1) = (&b0[..n], &b1[..n]);
    let mut acc0 = [0.0f32; LANES];
    let mut acc1 = [0.0f32; LANES];
    let main = n / LANES * LANES;
    for i in (0..main).step_by(LANES) {
        let pa: &[f32; LANES] = a[i..i + LANES].try_into().unwrap();
        let p0: &[f32; LANES] = b0[i..i + LANES].try_into().unwrap();
        let p1: &[f32; LANES] = b1[i..i + LANES].try_into().unwrap();
        for l in 0..LANES {
            acc0[l] += pa[l] * p0[l];
            acc1[l] += pa[l] * p1[l];
        }
    }
    let at = &a[main..];
    [
        fold_lanes(acc0, at, &b0[main..]),
        fold_lanes(acc1, at, &b1[main..]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn vecmul_matches_matmul() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Matrix::random(5, 3, 1.0, &mut rng);
        let v = vec![0.3, -0.2, 1.0, 0.5, -0.7];
        let via_mat = Matrix::from_vec(1, 5, v.clone()).matmul(&w);
        let via_vec = w.vecmul(&v);
        for (a, b) in via_mat.row(0).iter().zip(&via_vec) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = Matrix::random(4, 7, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_none());
        assert_eq!(a.max_abs_diff(&a), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_is_bit_identical_across_thread_counts() {
        let mut rng = SmallRng::seed_from_u64(7);
        // Big enough to clear the parallel threshold (96³ ≈ 885k MACs).
        let a = Matrix::random(96, 96, 1.0, &mut rng);
        let b = Matrix::random(96, 96, 1.0, &mut rng);
        bat_exec::set_threads(1);
        let gold = a.matmul(&b);
        for t in [2, 4, 8] {
            bat_exec::set_threads(t);
            let got = a.matmul(&b);
            assert!(
                gold.as_slice()
                    .iter()
                    .zip(got.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "{t} threads diverged from serial"
            );
        }
        bat_exec::set_threads(1);
    }

    #[test]
    fn matmul_nt_agrees_with_matmul_of_the_transpose() {
        let mut rng = SmallRng::seed_from_u64(11);
        // Small product: the dot-form kernel, vs matmul's axpy form —
        // different (each fixed) associations, so compare with tolerance.
        let a = Matrix::random(9, 17, 1.0, &mut rng);
        let b = Matrix::random(13, 17, 1.0, &mut rng);
        let diff = a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose()));
        assert!(diff.unwrap() < 1e-5);
        // Large product: matmul_nt un-packs and delegates, so the results
        // are the same kernel call and bit-identical.
        let a = Matrix::random(48, 64, 1.0, &mut rng);
        let b = Matrix::random(56, 64, 1.0, &mut rng);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul_nt shape mismatch")]
    fn matmul_nt_rejects_bad_inner_dim() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = a.matmul_nt(&b);
    }

    /// The AVX2-dispatched kernels must be bit-identical to the baseline
    /// bodies: the wider registers change speed, never arithmetic. This
    /// guards against a toolchain someday enabling FMA contraction (which
    /// would silently change results between CPUs).
    #[test]
    fn simd_dispatch_is_bit_identical_to_baseline() {
        let mut rng = SmallRng::seed_from_u64(23);
        let w = Matrix::random(37, 53, 1.0, &mut rng);
        let v: Vec<f32> = (0..37).map(|i| (i as f32 * 0.73).sin()).collect();
        let mut dispatched = vec![0.0f32; 53];
        fold_rows_into(&mut dispatched, &v, &w);
        let mut baseline = vec![0.0f32; 53];
        fold_rows_into_body(&mut baseline, &v, &w);
        assert!(dispatched
            .iter()
            .zip(&baseline)
            .all(|(x, y)| x.to_bits() == y.to_bits()));

        let a: Vec<f32> = (0..61).map(|i| (i as f32 * 0.31).cos()).collect();
        let b: Vec<f32> = (0..61).map(|i| (i as f32 * 0.17).sin()).collect();
        assert_eq!(
            dot_unrolled(&a, &b).to_bits(),
            dot_unrolled_body(&a, &b).to_bits()
        );
        let c: Vec<f32> = (0..61).map(|i| (i as f32 * 0.11).cos()).collect();
        let x2 = dot_unrolled_x2(&a, &b, &c);
        let x2b = dot_unrolled_x2_body(&a, &b, &c);
        assert_eq!(x2[0].to_bits(), x2b[0].to_bits());
        assert_eq!(x2[1].to_bits(), x2b[1].to_bits());

        let cf: Vec<Vec<f32>> = (0..4)
            .map(|r| {
                (0..37)
                    .map(|i| ((r * 37 + i) as f32 * 0.41).sin())
                    .collect()
            })
            .collect();
        let coeffs = [&cf[0][..], &cf[1][..], &cf[2][..], &cf[3][..]];
        let mut disp4 = vec![0.25f32; 4 * 53];
        fold_rows_into_x4(&mut disp4, coeffs, &w);
        let mut base4 = vec![0.25f32; 4 * 53];
        fold_rows_into_x4_body(&mut base4, coeffs, &w);
        assert!(disp4
            .iter()
            .zip(&base4)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    /// Pins each per-architecture clone against the baseline body
    /// *directly*: the public dispatchers prefer the widest tier the host
    /// has, so on an AVX-512 machine the AVX2 clones would otherwise go
    /// untested (and vice versa on older hosts). Every tier that exists on
    /// this CPU must be bit-identical — the tier changes speed, never bits.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_x86_tier_is_bit_identical_to_baseline() {
        let mut rng = SmallRng::seed_from_u64(41);
        let w = Matrix::random(29, 61, 1.0, &mut rng);
        let v: Vec<f32> = (0..29).map(|i| (i as f32 * 0.61).sin()).collect();
        let a: Vec<f32> = (0..77).map(|i| (i as f32 * 0.19).cos()).collect();
        let b: Vec<f32> = (0..77).map(|i| (i as f32 * 0.43).sin()).collect();
        let c: Vec<f32> = (0..77).map(|i| (i as f32 * 0.29).cos()).collect();
        let cf: Vec<Vec<f32>> = (0..4)
            .map(|r| {
                (0..29)
                    .map(|i| ((r * 29 + i) as f32 * 0.53).sin())
                    .collect()
            })
            .collect();
        let coeffs = [&cf[0][..], &cf[1][..], &cf[2][..], &cf[3][..]];

        let mut fold_gold = vec![0.125f32; 61];
        fold_rows_into_body(&mut fold_gold, &v, &w);
        let dot_gold = dot_unrolled_body(&a, &b).to_bits();
        let x2_gold = dot_unrolled_x2_body(&a, &b, &c);
        let mut x4_gold = vec![0.5f32; 4 * 61];
        fold_rows_into_x4_body(&mut x4_gold, coeffs, &w);
        let mut acc_gold = vec![0.25f32; 8];
        rows_dot_acc_body(&w.transpose(), &v[..20], &mut acc_gold);

        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        if std::arch::is_x86_feature_detected!("avx512f") {
            let mut fold = vec![0.125f32; 61];
            // SAFETY: AVX-512F support was just verified at runtime.
            unsafe {
                fold_rows_into_avx512(&mut fold, &v, &w);
                assert_eq!(dot_unrolled_avx512(&a, &b).to_bits(), dot_gold);
                let x2 = dot_unrolled_x2_avx512(&a, &b, &c);
                assert_eq!(x2[0].to_bits(), x2_gold[0].to_bits());
                assert_eq!(x2[1].to_bits(), x2_gold[1].to_bits());
                let mut x4 = vec![0.5f32; 4 * 61];
                fold_rows_into_x4_avx512(&mut x4, coeffs, &w);
                assert_eq!(bits(&x4), bits(&x4_gold));
                let mut acc = vec![0.25f32; 8];
                rows_dot_acc_avx512(&w.transpose(), &v[..20], &mut acc);
                assert_eq!(bits(&acc), bits(&acc_gold));
            }
            assert_eq!(bits(&fold), bits(&fold_gold), "avx512f fold");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut fold = vec![0.125f32; 61];
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe {
                fold_rows_into_avx2(&mut fold, &v, &w);
                assert_eq!(dot_unrolled_avx2(&a, &b).to_bits(), dot_gold);
                let x2 = dot_unrolled_x2_avx2(&a, &b, &c);
                assert_eq!(x2[0].to_bits(), x2_gold[0].to_bits());
                assert_eq!(x2[1].to_bits(), x2_gold[1].to_bits());
                let mut x4 = vec![0.5f32; 4 * 61];
                fold_rows_into_x4_avx2(&mut x4, coeffs, &w);
                assert_eq!(bits(&x4), bits(&x4_gold));
                let mut acc = vec![0.25f32; 8];
                rows_dot_acc_avx2(&w.transpose(), &v[..20], &mut acc);
                assert_eq!(bits(&acc), bits(&acc_gold));
            }
            assert_eq!(bits(&fold), bits(&fold_gold), "avx2 fold");
        }
    }

    /// The quad-row fold is the single-row fold applied to four rows: same
    /// left-to-right association per output column, so identical bits —
    /// which is what lets [`Matrix::matmul`] split a row block into quads
    /// plus a single-row tail without the boundary position (a function of
    /// the thread count) affecting results. Odd inner dimension exercises
    /// the depth-1 remainder pass.
    #[test]
    fn fold_rows_into_x4_matches_single_row_folds() {
        let mut rng = SmallRng::seed_from_u64(31);
        for (k, cols) in [(96usize, 256usize), (17, 41)] {
            let w = Matrix::random(k, cols, 1.0, &mut rng);
            let cf: Vec<Vec<f32>> = (0..4)
                .map(|r| (0..k).map(|i| ((r * k + i) as f32 * 0.23).cos()).collect())
                .collect();
            let mut quad = vec![0.5f32; 4 * cols];
            fold_rows_into_x4(&mut quad, [&cf[0], &cf[1], &cf[2], &cf[3]], &w);
            for r in 0..4 {
                let mut single = vec![0.5f32; cols];
                fold_rows_into(&mut single, &cf[r], &w);
                assert!(
                    quad[r * cols..(r + 1) * cols]
                        .iter()
                        .zip(&single)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "row {r} of k={k} cols={cols}"
                );
            }
        }
    }

    /// The blocked multi-dot accumulates exactly one [`dot_unrolled`] per
    /// row (bit-identical: same per-row lane fold), over a column prefix.
    #[test]
    fn rows_dot_acc_matches_per_row_dots() {
        let mut rng = SmallRng::seed_from_u64(29);
        for (rows, cols, window, outs) in [(8usize, 250usize, 250usize, 8usize), (7, 64, 41, 5)] {
            let m = Matrix::random(rows, cols, 1.0, &mut rng);
            let s: Vec<f32> = (0..window).map(|i| (i as f32 * 0.19).sin()).collect();
            let mut got = vec![0.5f32; outs];
            m.rows_dot_acc(&s, &mut got);
            for (c, g) in got.iter().enumerate() {
                let want = 0.5 + dot_unrolled(&s, &m.row(c)[..window]);
                assert_eq!(g.to_bits(), want.to_bits(), "row {c} of {rows}x{cols}");
            }
        }
    }

    #[test]
    fn is_zero_detects_structural_zeros() {
        assert!(Matrix::zeros(3, 4).is_zero());
        let mut m = Matrix::zeros(3, 4);
        m.set(2, 1, 1e-30);
        assert!(!m.is_zero());
    }

    proptest! {
        /// The packed/unrolled kernel agrees with the seed scalar kernel.
        #[test]
        fn matmul_matches_naive(seed in 0u64..500, n in 1usize..9, m in 1usize..9, k in 1usize..9) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = Matrix::random(n, m, 1.0, &mut rng);
            let b = Matrix::random(m, k, 1.0, &mut rng);
            prop_assert!(a.matmul(&b).max_abs_diff(&a.matmul_naive(&b)).unwrap() < 1e-5);
        }

        /// Dense and sparse-aware vecmul agree, including with exact zeros
        /// injected into the input vector.
        #[test]
        fn vecmul_dense_matches_sparse(
            seed in 0u64..500,
            rows in 1usize..12,
            cols in 1usize..12,
            zero_stride in 2usize..5,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let w = Matrix::random(rows, cols, 1.0, &mut rng);
            let v: Vec<f32> = (0..rows)
                .map(|i| if i % zero_stride == 0 { 0.0 } else { (i as f32).sin() })
                .collect();
            let dense = w.vecmul(&v);
            let sparse = w.vecmul_sparse(&v);
            for (d, s) in dense.iter().zip(&sparse) {
                prop_assert!((d - s).abs() < 1e-6);
            }
        }

        /// (A·B)ᵀ = Bᵀ·Aᵀ for random matrices.
        #[test]
        fn transpose_of_product(seed in 0u64..1000, n in 1usize..6, m in 1usize..6, k in 1usize..6) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = Matrix::random(n, m, 1.0, &mut rng);
            let b = Matrix::random(m, k, 1.0, &mut rng);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-4);
        }

        /// Matmul distributes over identity padding: A·I = I·A = A.
        #[test]
        fn identity_both_sides(seed in 0u64..1000, n in 1usize..8) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = Matrix::random(n, n, 1.0, &mut rng);
            let i = Matrix::identity(n);
            prop_assert!(a.matmul(&i).max_abs_diff(&a).unwrap() < 1e-6);
            prop_assert!(i.matmul(&a).max_abs_diff(&a).unwrap() < 1e-6);
        }

        /// Whatever SIMD tier the host dispatches to, dot results are
        /// bit-identical to the baseline body for arbitrary inputs and
        /// lengths (including the tier cutoffs and lane remainders).
        #[test]
        fn dot_dispatch_is_bit_identical_for_any_input(
            xs in proptest::collection::vec(-1e3f32..1e3, 1..200),
        ) {
            let ys: Vec<f32> = xs.iter().rev().map(|x| x * 0.5 + 1.0).collect();
            prop_assert_eq!(
                dot_unrolled(&xs, &ys).to_bits(),
                dot_unrolled_body(&xs, &ys).to_bits()
            );
            let x2 = dot_unrolled_x2(&xs, &ys, &xs);
            let x2b = dot_unrolled_x2_body(&xs, &ys, &xs);
            prop_assert_eq!(x2[0].to_bits(), x2b[0].to_bits());
            prop_assert_eq!(x2[1].to_bits(), x2b[1].to_bits());
        }
    }
}
