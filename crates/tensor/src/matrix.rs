//! A row-major `f32` matrix.

use rand::Rng;

/// A dense row-major matrix of `f32` values.
///
/// ```
/// use bat_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// assert_eq!(m.get(1, 1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with entries drawn i.i.d. from
    /// `Uniform(-scale, scale)`; used for seeded weight initialization.
    pub fn random<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `vec × self` where `vec` has length `self.rows()`; returns a vector of
    /// length `self.cols()`. This is the hot path of the per-token forward
    /// pass (hidden-state row times weight matrix).
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != self.rows()`.
    pub fn vecmul(&self, vec: &[f32]) -> Vec<f32> {
        assert_eq!(vec.len(), self.rows, "vecmul shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (k, &a) in vec.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (o, &b) in out.iter_mut().zip(self.row(k)) {
                *o += a * b;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Maximum absolute difference from `other`; `None` if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f32> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn vecmul_matches_matmul() {
        let mut rng = SmallRng::seed_from_u64(1);
        let w = Matrix::random(5, 3, 1.0, &mut rng);
        let v = vec![0.3, -0.2, 1.0, 0.5, -0.7];
        let via_mat = Matrix::from_vec(1, 5, v.clone()).matmul(&w);
        let via_vec = w.vecmul(&v);
        for (a, b) in via_mat.row(0).iter().zip(&via_vec) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = Matrix::random(4, 7, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_none());
        assert_eq!(a.max_abs_diff(&a), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    proptest! {
        /// (A·B)ᵀ = Bᵀ·Aᵀ for random matrices.
        #[test]
        fn transpose_of_product(seed in 0u64..1000, n in 1usize..6, m in 1usize..6, k in 1usize..6) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = Matrix::random(n, m, 1.0, &mut rng);
            let b = Matrix::random(m, k, 1.0, &mut rng);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-4);
        }

        /// Matmul distributes over identity padding: A·I = I·A = A.
        #[test]
        fn identity_both_sides(seed in 0u64..1000, n in 1usize..8) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let a = Matrix::random(n, n, 1.0, &mut rng);
            let i = Matrix::identity(n);
            prop_assert!(a.matmul(&i).max_abs_diff(&a).unwrap() < 1e-6);
            prop_assert!(i.matmul(&a).max_abs_diff(&a).unwrap() < 1e-6);
        }
    }
}
