//! Properties of the quantized cold-tier blocks: the roundtrip error
//! stays within the documented per-plane bound for both formats across
//! random plane shapes and value scales, and the dequant-fused attend
//! kernels are bit-identical to dequantizing first and attending over
//! the f32 copy.

use bat_tensor::{ColBlock, QuantKind, QuantizedColBlock, SplitCols};
use proptest::prelude::*;
use proptest::TestRng;

fn unit(rng: &mut TestRng) -> f32 {
    // Uniform in [0, 1) from the top 24 bits of a draw.
    (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
}

fn random_block(rng: &mut TestRng) -> ColBlock {
    let rows = 1 + (rng.next_u64() % 24) as usize;
    let cols = 1 + (rng.next_u64() % 120) as usize;
    // Span nearly five orders of magnitude of plane scales, staying well
    // inside the fp16 normal range.
    let scale = 10f32.powf(unit(rng) * 4.6 - 2.0);
    let mut b = ColBlock::new(rows);
    let mut col = vec![0.0f32; rows];
    for _ in 0..cols {
        for slot in col.iter_mut() {
            *slot = (unit(rng) * 2.0 - 1.0) * scale;
        }
        b.push_col(&col);
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_error_stays_within_documented_bound(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let block = random_block(&mut rng);
        for kind in [QuantKind::Int8, QuantKind::F16] {
            let q = QuantizedColBlock::quantize(&block, kind);
            let back = q.dequantize();
            for r in 0..block.rows() {
                let bound = q.error_bound(r);
                for (x, y) in block.plane(r).iter().zip(back.plane(r)) {
                    prop_assert!(
                        (x - y).abs() <= bound,
                        "{kind:?} plane {r}: |{x} - {y}| = {} > {bound}",
                        (x - y).abs()
                    );
                }
            }
        }
    }

    #[test]
    fn fused_attend_bit_matches_dequantize_then_attend(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let block = random_block(&mut rng);
        let rows = block.rows();
        let window = 1 + (rng.next_u64() as usize % block.len());
        let scores: Vec<f32> = (0..window).map(|_| unit(&mut rng) * 2.0 - 1.0).collect();
        let coeff = unit(&mut rng) * 2.0 - 1.0;
        let plane = rng.next_u64() as usize % rows;
        for kind in [QuantKind::Int8, QuantKind::F16] {
            let q = QuantizedColBlock::quantize(&block, kind);
            let deq = q.dequantize();
            let view = SplitCols::new(None, &deq);

            let mut got = vec![0.5f32; rows];
            let mut want = vec![0.5f32; rows];
            q.rows_dot_acc(0, &scores, &mut got);
            view.rows_dot_acc(0, &scores, &mut want);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "{:?} rows_dot_acc", kind);
            }

            let mut got = vec![-0.25f32; window];
            let mut want = vec![-0.25f32; window];
            q.axpy_plane(plane, window, coeff, &mut got);
            view.axpy_plane(plane, window, coeff, &mut want);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "{:?} axpy_plane", kind);
            }
        }
    }
}
