//! Fault schedules: validated, time-ordered fault event lists.

use bat_types::{BatError, WorkerId};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// What goes wrong (or recovers) at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A cache worker dies: its cache contents are lost and the meta
    /// service must invalidate every entry it owned.
    WorkerCrash(WorkerId),
    /// A previously crashed worker rejoins empty, with a fresh incarnation
    /// number; re-warming is the recovery path's job.
    WorkerRestart(WorkerId),
    /// The cache-pool interconnect degrades: KV transfer times multiply by
    /// `factor` (≥ 1) until a [`FaultKind::LinkRestore`].
    LinkDegrade {
        /// Multiplier applied to network transfer time.
        factor: f64,
    },
    /// Link bandwidth returns to nominal.
    LinkRestore,
    /// The cache meta service stops answering lookups for `duration_secs`;
    /// requests planned inside the window cannot locate cached prefixes and
    /// fall back to recompute.
    MetaStall {
        /// Length of the unresponsive window, seconds.
        duration_secs: f64,
    },
    /// Replica `node` of the replicated cache-meta group dies, losing its
    /// log and state; if it was the leader, the survivors must elect a new
    /// one before the next meta command can commit.
    MetaCrash(usize),
    /// Meta replica `node` rejoins empty and catches up from the leader via
    /// snapshot + log replay.
    MetaRestart(usize),
    /// The link between workers `a` and `b` is cut (symmetric): `a` can no
    /// longer reach `b` while every other pair stays connected. A meta
    /// client whose leader is hosted across a cut link treats the leader as
    /// unreachable and forces an election.
    CutLink {
        /// One endpoint of the severed link.
        a: WorkerId,
        /// The other endpoint.
        b: WorkerId,
    },
    /// The previously cut link between `a` and `b` heals.
    HealLink {
        /// One endpoint of the healed link.
        a: WorkerId,
        /// The other endpoint.
        b: WorkerId,
    },
    /// The (symmetric) link between workers `a` and `b` slows: KV transfers
    /// across it multiply by `factor` (> 1), but the pair stays reachable —
    /// this is the straggler-link case that hedged pulls exist for. A
    /// `factor` of exactly 1 restores the link to nominal speed.
    SlowLink {
        /// One endpoint of the slowed link.
        a: WorkerId,
        /// The other endpoint.
        b: WorkerId,
        /// Transfer-time multiplier (≥ 1; 1 restores nominal speed).
        factor: f64,
    },
    /// Planned scale-in: `worker` stops accepting new work, migrates its
    /// queued and seated-but-unstarted chunks to live workers, and leaves
    /// the membership. Unlike a crash, nothing in flight is lost — but the
    /// process does exit, so its cache contents go with it.
    WorkerDrain(WorkerId),
    /// Planned scale-out: a fresh worker takes over slot `worker` (which
    /// must currently be out of the membership — drained or crashed) and is
    /// incrementally re-planned into the slot map with a new incarnation.
    WorkerJoin(WorkerId),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires, in trace time (seconds).
    pub at_secs: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Default size of the replicated meta group when a schedule (or an old
/// serialized schedule that predates meta faults) doesn't say.
pub const DEFAULT_META_NODES: usize = 3;

/// A validated fault schedule for a cluster of `num_workers` cache workers
/// and a replicated meta group of `meta_nodes` replicas.
///
/// Invariants enforced at construction:
/// * events are finite-timed, non-negative, and sorted by time (ties keep
///   insertion order);
/// * every crash targets a live worker and every restart a crashed one;
/// * at least one cache worker is alive at every instant;
/// * every meta crash targets a live replica, every meta restart a crashed
///   one, and a majority of the meta group stays alive at every instant (a
///   quorum-less group cannot commit, so such schedules are unservable);
/// * link cuts target distinct in-range workers, cut only intact links, and
///   heals only cut ones;
/// * degrade factors are ≥ 1 and stall durations are > 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    num_workers: usize,
    /// 0 only in schedules deserialized from before meta faults existed;
    /// [`FaultSchedule::meta_nodes`] normalizes that to the default.
    #[serde(default)]
    meta_nodes: usize,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from events, sorting them by time and validating
    /// the invariants above.
    ///
    /// # Errors
    ///
    /// Returns [`BatError::InvalidConfig`] describing the first violated
    /// invariant.
    pub fn new(num_workers: usize, events: Vec<FaultEvent>) -> Result<Self, BatError> {
        FaultSchedule::with_meta_nodes(num_workers, DEFAULT_META_NODES, events)
    }

    /// Like [`FaultSchedule::new`] but for a meta group of `meta_nodes`
    /// replicas instead of the default [`DEFAULT_META_NODES`].
    ///
    /// # Errors
    ///
    /// Returns [`BatError::InvalidConfig`] describing the first violated
    /// invariant.
    pub fn with_meta_nodes(
        num_workers: usize,
        meta_nodes: usize,
        mut events: Vec<FaultEvent>,
    ) -> Result<Self, BatError> {
        let invalid = |msg: String| Err(BatError::InvalidConfig(msg));
        if num_workers == 0 {
            return invalid("fault schedule needs at least one worker".into());
        }
        if meta_nodes == 0 {
            return invalid("fault schedule needs at least one meta replica".into());
        }
        for e in &events {
            if !e.at_secs.is_finite() || e.at_secs < 0.0 {
                return invalid(format!("fault at t={} must be finite and >= 0", e.at_secs));
            }
            match e.kind {
                FaultKind::WorkerCrash(w)
                | FaultKind::WorkerRestart(w)
                | FaultKind::WorkerDrain(w)
                | FaultKind::WorkerJoin(w) => {
                    if w.index() >= num_workers {
                        return invalid(format!(
                            "fault targets {w} but the cluster has {num_workers} workers"
                        ));
                    }
                }
                FaultKind::MetaCrash(m) | FaultKind::MetaRestart(m) => {
                    if m >= meta_nodes {
                        return invalid(format!(
                            "meta fault targets replica {m} but the group has {meta_nodes} nodes"
                        ));
                    }
                }
                FaultKind::CutLink { a, b } | FaultKind::HealLink { a, b } => {
                    if a.index() >= num_workers || b.index() >= num_workers {
                        return invalid(format!(
                            "link fault {a}<->{b} exceeds the {num_workers}-worker cluster"
                        ));
                    }
                    if a == b {
                        return invalid(format!("link fault endpoints must differ, got {a}<->{b}"));
                    }
                }
                FaultKind::SlowLink { a, b, factor } => {
                    if a.index() >= num_workers || b.index() >= num_workers {
                        return invalid(format!(
                            "slow link {a}<->{b} exceeds the {num_workers}-worker cluster"
                        ));
                    }
                    if a == b {
                        return invalid(format!("slow link endpoints must differ, got {a}<->{b}"));
                    }
                    if !factor.is_finite() || factor < 1.0 {
                        return invalid(format!("slow link factor {factor} must be >= 1"));
                    }
                }
                FaultKind::LinkDegrade { factor } => {
                    if !factor.is_finite() || factor < 1.0 {
                        return invalid(format!("link degrade factor {factor} must be >= 1"));
                    }
                }
                FaultKind::MetaStall { duration_secs } => {
                    if !duration_secs.is_finite() || duration_secs <= 0.0 {
                        return invalid(format!("meta stall duration {duration_secs} must be > 0"));
                    }
                }
                FaultKind::LinkRestore => {}
            }
        }
        events.sort_by(|a, b| {
            a.at_secs
                .partial_cmp(&b.at_secs)
                .expect("fault times are finite")
        });
        // Replay membership to catch dead-worker crashes, double restarts,
        // full-cluster loss, meta-quorum loss, and double link cuts.
        let mut alive = vec![true; num_workers];
        let mut n_alive = num_workers;
        let mut meta_alive = vec![true; meta_nodes];
        let mut n_meta_alive = meta_nodes;
        let quorum = meta_nodes / 2 + 1;
        let mut cut = vec![false; num_workers * num_workers];
        for e in &events {
            match e.kind {
                FaultKind::WorkerCrash(w) => {
                    if !alive[w.index()] {
                        return invalid(format!(
                            "{w} crashes at t={} while already down",
                            e.at_secs
                        ));
                    }
                    alive[w.index()] = false;
                    n_alive -= 1;
                    if n_alive == 0 {
                        return invalid(format!(
                            "all workers down at t={}; at least one must stay alive",
                            e.at_secs
                        ));
                    }
                }
                FaultKind::WorkerDrain(w) => {
                    if !alive[w.index()] {
                        return invalid(format!(
                            "{w} drains at t={} while already out of the membership",
                            e.at_secs
                        ));
                    }
                    alive[w.index()] = false;
                    n_alive -= 1;
                    if n_alive == 0 {
                        return invalid(format!(
                            "draining the last worker at t={} leaves nowhere to migrate; \
                             at least one must stay alive",
                            e.at_secs
                        ));
                    }
                }
                FaultKind::WorkerRestart(w) => {
                    if alive[w.index()] {
                        return invalid(format!("{w} restarts at t={} while alive", e.at_secs));
                    }
                    alive[w.index()] = true;
                    n_alive += 1;
                }
                FaultKind::WorkerJoin(w) => {
                    if alive[w.index()] {
                        return invalid(format!(
                            "{w} joins at t={} while its slot is still occupied",
                            e.at_secs
                        ));
                    }
                    alive[w.index()] = true;
                    n_alive += 1;
                }
                FaultKind::MetaCrash(m) => {
                    if !meta_alive[m] {
                        return invalid(format!(
                            "meta replica {m} crashes at t={} while already down",
                            e.at_secs
                        ));
                    }
                    meta_alive[m] = false;
                    n_meta_alive -= 1;
                    if n_meta_alive < quorum {
                        return invalid(format!(
                            "meta quorum lost at t={}: {n_meta_alive}/{meta_nodes} alive but \
                             {quorum} needed to commit",
                            e.at_secs
                        ));
                    }
                }
                FaultKind::MetaRestart(m) => {
                    if meta_alive[m] {
                        return invalid(format!(
                            "meta replica {m} restarts at t={} while alive",
                            e.at_secs
                        ));
                    }
                    meta_alive[m] = true;
                    n_meta_alive += 1;
                }
                FaultKind::CutLink { a, b } => {
                    let idx = a.index() * num_workers + b.index();
                    if cut[idx] {
                        return invalid(format!(
                            "link {a}<->{b} cut at t={} while already cut",
                            e.at_secs
                        ));
                    }
                    cut[idx] = true;
                    cut[b.index() * num_workers + a.index()] = true;
                }
                FaultKind::HealLink { a, b } => {
                    let idx = a.index() * num_workers + b.index();
                    if !cut[idx] {
                        return invalid(format!(
                            "link {a}<->{b} heals at t={} while intact",
                            e.at_secs
                        ));
                    }
                    cut[idx] = false;
                    cut[b.index() * num_workers + a.index()] = false;
                }
                _ => {}
            }
        }
        Ok(FaultSchedule {
            num_workers,
            meta_nodes,
            events,
        })
    }

    /// An empty schedule (no faults ever fire).
    pub fn none(num_workers: usize) -> Self {
        FaultSchedule {
            num_workers: num_workers.max(1),
            meta_nodes: DEFAULT_META_NODES,
            events: Vec::new(),
        }
    }

    /// The canonical kill-one-worker experiment: `worker` crashes at
    /// `crash_at` and restarts at `restart_at`.
    ///
    /// # Errors
    ///
    /// Returns [`BatError::InvalidConfig`] for out-of-range workers or
    /// `restart_at <= crash_at`.
    pub fn single_crash(
        num_workers: usize,
        worker: WorkerId,
        crash_at: f64,
        restart_at: f64,
    ) -> Result<Self, BatError> {
        if restart_at <= crash_at {
            return Err(BatError::InvalidConfig(format!(
                "restart at t={restart_at} must come after crash at t={crash_at}"
            )));
        }
        FaultSchedule::new(
            num_workers,
            vec![
                FaultEvent {
                    at_secs: crash_at,
                    kind: FaultKind::WorkerCrash(worker),
                },
                FaultEvent {
                    at_secs: restart_at,
                    kind: FaultKind::WorkerRestart(worker),
                },
            ],
        )
    }

    /// The canonical meta-failover experiment: meta replica `node` (pass
    /// the initial leader to exercise election) crashes at `crash_at` and
    /// rejoins at `restart_at` to catch up via snapshot + log replay.
    ///
    /// # Errors
    ///
    /// Returns [`BatError::InvalidConfig`] for out-of-range replicas,
    /// `restart_at <= crash_at`, or a group too small to keep quorum.
    pub fn single_meta_crash(
        num_workers: usize,
        meta_nodes: usize,
        node: usize,
        crash_at: f64,
        restart_at: f64,
    ) -> Result<Self, BatError> {
        if restart_at <= crash_at {
            return Err(BatError::InvalidConfig(format!(
                "meta restart at t={restart_at} must come after crash at t={crash_at}"
            )));
        }
        FaultSchedule::with_meta_nodes(
            num_workers,
            meta_nodes,
            vec![
                FaultEvent {
                    at_secs: crash_at,
                    kind: FaultKind::MetaCrash(node),
                },
                FaultEvent {
                    at_secs: restart_at,
                    kind: FaultKind::MetaRestart(node),
                },
            ],
        )
    }

    /// Generates a seeded random schedule over `[0, horizon_secs)`:
    /// `crashes` crash/restart pairs (each down for 5–20% of the horizon,
    /// never overlapping enough to kill the whole cluster) plus one link
    /// degradation and one meta stall. Deterministic per seed and valid by
    /// construction.
    pub fn random(seed: u64, num_workers: usize, horizon_secs: f64, crashes: usize) -> Self {
        assert!(num_workers >= 2, "random schedules need >= 2 workers");
        assert!(horizon_secs > 0.0, "horizon must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut down_until = vec![0.0f64; num_workers];
        for _ in 0..crashes {
            let w = rng.gen_range(0..num_workers);
            let crash_at = rng.gen_range(0.1 * horizon_secs..0.7 * horizon_secs);
            let outage = rng.gen_range(0.05 * horizon_secs..0.2 * horizon_secs);
            let restart_at = (crash_at + outage).min(horizon_secs * 0.95);
            // Keep it simple and safe: only crash workers that are up for
            // the whole window, and never take down more than half the
            // cluster at once.
            let overlapping = down_until.iter().filter(|&&until| until > crash_at).count();
            if down_until[w] > 0.0 || overlapping >= num_workers / 2 {
                continue;
            }
            down_until[w] = restart_at;
            events.push(FaultEvent {
                at_secs: crash_at,
                kind: FaultKind::WorkerCrash(WorkerId::new(w as u64)),
            });
            events.push(FaultEvent {
                at_secs: restart_at,
                kind: FaultKind::WorkerRestart(WorkerId::new(w as u64)),
            });
        }
        let degrade_at = rng.gen_range(0.2 * horizon_secs..0.5 * horizon_secs);
        events.push(FaultEvent {
            at_secs: degrade_at,
            kind: FaultKind::LinkDegrade {
                factor: rng.gen_range(1.5..4.0),
            },
        });
        events.push(FaultEvent {
            at_secs: degrade_at + rng.gen_range(0.05 * horizon_secs..0.15 * horizon_secs),
            kind: FaultKind::LinkRestore,
        });
        events.push(FaultEvent {
            at_secs: rng.gen_range(0.2 * horizon_secs..0.8 * horizon_secs),
            kind: FaultKind::MetaStall {
                duration_secs: rng.gen_range(0.01 * horizon_secs..0.05 * horizon_secs),
            },
        });
        FaultSchedule::new(num_workers, events).expect("random schedules are valid by construction")
    }

    /// The canonical elastic-membership experiment: `worker` drains at
    /// `drain_at` (its queued work migrates to the survivors) and a fresh
    /// process joins the vacated slot at `join_at`.
    ///
    /// # Errors
    ///
    /// Returns [`BatError::InvalidConfig`] for out-of-range workers or
    /// `join_at <= drain_at`.
    pub fn drain_join(
        num_workers: usize,
        worker: WorkerId,
        drain_at: f64,
        join_at: f64,
    ) -> Result<Self, BatError> {
        if join_at <= drain_at {
            return Err(BatError::InvalidConfig(format!(
                "join at t={join_at} must come after drain at t={drain_at}"
            )));
        }
        FaultSchedule::new(
            num_workers,
            vec![
                FaultEvent {
                    at_secs: drain_at,
                    kind: FaultKind::WorkerDrain(worker),
                },
                FaultEvent {
                    at_secs: join_at,
                    kind: FaultKind::WorkerJoin(worker),
                },
            ],
        )
    }

    /// Generates a seeded random *membership* schedule over
    /// `[0, horizon_secs)`: `churn` departure/return pairs, each randomly a
    /// crash/restart or a drain/join, never emptying the cluster.
    /// Deterministic per seed and valid by construction — this is the
    /// schedule shape the elastic conservation proptests and the CI chaos
    /// matrix replay.
    pub fn random_membership(
        seed: u64,
        num_workers: usize,
        horizon_secs: f64,
        churn: usize,
    ) -> Self {
        assert!(num_workers >= 2, "membership schedules need >= 2 workers");
        assert!(horizon_secs > 0.0, "horizon must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut down_until = vec![0.0f64; num_workers];
        for _ in 0..churn {
            let w = rng.gen_range(0..num_workers);
            let leave_at = rng.gen_range(0.1 * horizon_secs..0.7 * horizon_secs);
            let outage = rng.gen_range(0.05 * horizon_secs..0.2 * horizon_secs);
            let return_at = (leave_at + outage).min(horizon_secs * 0.95);
            let overlapping = down_until.iter().filter(|&&until| until > leave_at).count();
            if down_until[w] > 0.0 || overlapping >= num_workers / 2 {
                continue;
            }
            down_until[w] = return_at;
            let planned = rng.gen_bool(0.5);
            let id = WorkerId::new(w as u64);
            events.push(FaultEvent {
                at_secs: leave_at,
                kind: if planned {
                    FaultKind::WorkerDrain(id)
                } else {
                    FaultKind::WorkerCrash(id)
                },
            });
            events.push(FaultEvent {
                at_secs: return_at,
                kind: if planned {
                    FaultKind::WorkerJoin(id)
                } else {
                    FaultKind::WorkerRestart(id)
                },
            });
        }
        FaultSchedule::new(num_workers, events)
            .expect("random membership schedules are valid by construction")
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Cluster size the schedule was validated against.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Replicated meta-group size the schedule was validated against
    /// (pre-meta serialized schedules read as [`DEFAULT_META_NODES`]).
    pub fn meta_nodes(&self) -> usize {
        if self.meta_nodes == 0 {
            DEFAULT_META_NODES
        } else {
            self.meta_nodes
        }
    }

    /// True when the schedule contains meta-replica or link-partition
    /// events (the kinds that exercise the replicated meta service).
    pub fn has_meta_events(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.kind,
                FaultKind::MetaCrash(_)
                    | FaultKind::MetaRestart(_)
                    | FaultKind::CutLink { .. }
                    | FaultKind::HealLink { .. }
            )
        })
    }

    /// Time of the first scheduled meta-replica crash, if any.
    pub fn first_meta_crash_at(&self) -> Option<f64> {
        self.events
            .iter()
            .find(|e| matches!(e.kind, FaultKind::MetaCrash(_)))
            .map(|e| e.at_secs)
    }

    /// True when the schedule contains planned membership events (drains or
    /// joins) as opposed to pure faults.
    pub fn has_membership_events(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerDrain(_) | FaultKind::WorkerJoin(_)))
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the first scheduled crash, if any — the pre-fault steady
    /// state ends here.
    pub fn first_crash_at(&self) -> Option<f64> {
        self.events
            .iter()
            .find(|e| matches!(e.kind, FaultKind::WorkerCrash(_)))
            .map(|e| e.at_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WorkerId {
        WorkerId::new(i)
    }

    #[test]
    fn events_sort_by_time() {
        let s = FaultSchedule::new(
            4,
            vec![
                FaultEvent {
                    at_secs: 30.0,
                    kind: FaultKind::WorkerRestart(w(1)),
                },
                FaultEvent {
                    at_secs: 10.0,
                    kind: FaultKind::WorkerCrash(w(1)),
                },
            ],
        )
        .unwrap();
        assert_eq!(s.events()[0].at_secs, 10.0);
        assert_eq!(s.first_crash_at(), Some(10.0));
    }

    #[test]
    fn rejects_out_of_range_worker() {
        let err = FaultSchedule::new(
            2,
            vec![FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::WorkerCrash(w(5)),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, BatError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn rejects_double_crash_and_spurious_restart() {
        let double = FaultSchedule::new(
            3,
            vec![
                FaultEvent {
                    at_secs: 1.0,
                    kind: FaultKind::WorkerCrash(w(0)),
                },
                FaultEvent {
                    at_secs: 2.0,
                    kind: FaultKind::WorkerCrash(w(0)),
                },
            ],
        );
        assert!(double.is_err());
        let spurious = FaultSchedule::new(
            3,
            vec![FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::WorkerRestart(w(0)),
            }],
        );
        assert!(spurious.is_err());
    }

    #[test]
    fn rejects_full_cluster_loss() {
        let err = FaultSchedule::new(
            2,
            vec![
                FaultEvent {
                    at_secs: 1.0,
                    kind: FaultKind::WorkerCrash(w(0)),
                },
                FaultEvent {
                    at_secs: 2.0,
                    kind: FaultKind::WorkerCrash(w(1)),
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
    }

    #[test]
    fn rejects_bad_factors_and_durations() {
        assert!(FaultSchedule::new(
            2,
            vec![FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::LinkDegrade { factor: 0.5 },
            }],
        )
        .is_err());
        assert!(FaultSchedule::new(
            2,
            vec![FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::MetaStall { duration_secs: 0.0 },
            }],
        )
        .is_err());
        assert!(FaultSchedule::new(
            2,
            vec![FaultEvent {
                at_secs: f64::NAN,
                kind: FaultKind::LinkRestore,
            }],
        )
        .is_err());
    }

    #[test]
    fn single_crash_orders_and_validates() {
        let s = FaultSchedule::single_crash(4, w(2), 60.0, 120.0).unwrap();
        assert_eq!(s.events().len(), 2);
        assert!(FaultSchedule::single_crash(4, w(2), 60.0, 60.0).is_err());
    }

    #[test]
    fn random_schedules_are_deterministic_and_valid() {
        for seed in 0..50 {
            let a = FaultSchedule::random(seed, 4, 600.0, 3);
            let b = FaultSchedule::random(seed, 4, 600.0, 3);
            assert_eq!(a, b, "seed {seed}");
            // Re-validating succeeds: the generator only emits valid plans.
            FaultSchedule::new(4, a.events().to_vec()).unwrap();
        }
        assert_ne!(
            FaultSchedule::random(1, 4, 600.0, 3),
            FaultSchedule::random(2, 4, 600.0, 3)
        );
    }

    #[test]
    fn serializes_round_trip() {
        let s = FaultSchedule::single_crash(4, w(1), 5.0, 25.0).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn old_serialized_schedules_default_meta_nodes() {
        // JSON written before meta faults existed has no meta_nodes field.
        let back: FaultSchedule = serde_json::from_str(r#"{"num_workers":4,"events":[]}"#).unwrap();
        assert_eq!(back.meta_nodes(), DEFAULT_META_NODES);
    }

    #[test]
    fn meta_crash_keeps_quorum() {
        let ok = FaultSchedule::single_meta_crash(4, 3, 0, 10.0, 30.0).unwrap();
        assert_eq!(ok.meta_nodes(), 3);
        assert!(ok.has_meta_events());
        assert_eq!(ok.first_meta_crash_at(), Some(10.0));
        assert_eq!(
            ok.first_crash_at(),
            None,
            "meta crashes are not worker crashes"
        );

        // Killing a second replica of a 3-group before the first rejoins
        // drops below quorum (2 of 3).
        let err = FaultSchedule::with_meta_nodes(
            4,
            3,
            vec![
                FaultEvent {
                    at_secs: 1.0,
                    kind: FaultKind::MetaCrash(0),
                },
                FaultEvent {
                    at_secs: 2.0,
                    kind: FaultKind::MetaCrash(1),
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("quorum"), "{err}");
    }

    #[test]
    fn rejects_double_meta_crash_and_out_of_range_replica() {
        assert!(FaultSchedule::with_meta_nodes(
            4,
            3,
            vec![
                FaultEvent {
                    at_secs: 1.0,
                    kind: FaultKind::MetaCrash(1),
                },
                FaultEvent {
                    at_secs: 2.0,
                    kind: FaultKind::MetaCrash(1),
                },
            ],
        )
        .is_err());
        assert!(FaultSchedule::with_meta_nodes(
            4,
            3,
            vec![FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::MetaRestart(0),
            }],
        )
        .is_err());
        assert!(FaultSchedule::with_meta_nodes(
            4,
            3,
            vec![FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::MetaCrash(7),
            }],
        )
        .is_err());
    }

    #[test]
    fn drain_join_validates_membership() {
        let s = FaultSchedule::drain_join(4, w(1), 10.0, 30.0).unwrap();
        assert_eq!(s.events().len(), 2);
        assert!(s.has_membership_events());
        assert_eq!(s.first_crash_at(), None, "drains are planned, not crashes");
        assert!(FaultSchedule::drain_join(4, w(1), 30.0, 30.0).is_err());

        // Draining a worker that is already out is invalid.
        assert!(FaultSchedule::new(
            3,
            vec![
                FaultEvent {
                    at_secs: 1.0,
                    kind: FaultKind::WorkerCrash(w(0)),
                },
                FaultEvent {
                    at_secs: 2.0,
                    kind: FaultKind::WorkerDrain(w(0)),
                },
            ],
        )
        .is_err());
        // Draining the last live worker leaves nowhere to migrate.
        let err = FaultSchedule::new(
            2,
            vec![
                FaultEvent {
                    at_secs: 1.0,
                    kind: FaultKind::WorkerCrash(w(0)),
                },
                FaultEvent {
                    at_secs: 2.0,
                    kind: FaultKind::WorkerDrain(w(1)),
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("nowhere to migrate"), "{err}");
        // A join may re-occupy a *crashed* slot (replacement hardware), but
        // never a live one.
        assert!(FaultSchedule::new(
            3,
            vec![
                FaultEvent {
                    at_secs: 1.0,
                    kind: FaultKind::WorkerCrash(w(2)),
                },
                FaultEvent {
                    at_secs: 2.0,
                    kind: FaultKind::WorkerJoin(w(2)),
                },
            ],
        )
        .is_ok());
        assert!(FaultSchedule::new(
            3,
            vec![FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::WorkerJoin(w(2)),
            }],
        )
        .is_err());
    }

    #[test]
    fn random_membership_schedules_are_deterministic_and_valid() {
        let mut saw_planned = false;
        for seed in 0..50 {
            let a = FaultSchedule::random_membership(seed, 4, 600.0, 3);
            let b = FaultSchedule::random_membership(seed, 4, 600.0, 3);
            assert_eq!(a, b, "seed {seed}");
            FaultSchedule::new(4, a.events().to_vec()).unwrap();
            saw_planned |= a.has_membership_events();
        }
        assert!(saw_planned, "50 seeds must produce at least one drain/join");
    }

    #[test]
    fn link_cuts_validate_pairing() {
        let ok = FaultSchedule::new(
            4,
            vec![
                FaultEvent {
                    at_secs: 1.0,
                    kind: FaultKind::CutLink { a: w(0), b: w(2) },
                },
                FaultEvent {
                    at_secs: 5.0,
                    kind: FaultKind::HealLink { a: w(2), b: w(0) },
                },
            ],
        );
        // Heal may name the endpoints in either order: links are symmetric.
        assert!(ok.is_ok());
        assert!(ok.unwrap().has_meta_events());

        // Self-link, double cut, and spurious heal are rejected.
        assert!(FaultSchedule::new(
            4,
            vec![FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::CutLink { a: w(1), b: w(1) },
            }],
        )
        .is_err());
        assert!(FaultSchedule::new(
            4,
            vec![
                FaultEvent {
                    at_secs: 1.0,
                    kind: FaultKind::CutLink { a: w(0), b: w(1) },
                },
                FaultEvent {
                    at_secs: 2.0,
                    kind: FaultKind::CutLink { a: w(1), b: w(0) },
                },
            ],
        )
        .is_err());
        assert!(FaultSchedule::new(
            4,
            vec![FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::HealLink { a: w(0), b: w(1) },
            }],
        )
        .is_err());
    }
}
