//! Epoch-numbered cluster membership.

use crate::schedule::{FaultEvent, FaultKind};
use bat_types::WorkerId;
use serde::{Deserialize, Serialize};

/// What a [`ClusterView::apply`] call did, so callers can react (invalidate
/// meta entries, re-plan placement, re-warm a worker, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppliedFault {
    /// `worker` just died; its cache contents are gone.
    Crashed(WorkerId),
    /// `worker` just rejoined, empty, with the given new incarnation.
    Restarted(WorkerId, u64),
    /// Network transfer times now multiply by this factor.
    LinkFactor(f64),
    /// The meta service is unresponsive until the given time.
    MetaStalledUntil(f64),
}

/// Live membership of the cache-worker cluster.
///
/// The `epoch` advances on every membership change (crash or restart), so
/// downstream caches of placement decisions can cheaply detect staleness.
/// Each worker also carries an `incarnation` counter, bumped when it
/// rejoins: warmth recorded under an old incarnation must not count for the
/// rejoined (empty) worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterView {
    epoch: u64,
    alive: Vec<bool>,
    incarnation: Vec<u64>,
    link_factor: f64,
    meta_stall_until: f64,
}

impl ClusterView {
    /// A fresh view with all `num_workers` workers alive at epoch 0.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "cluster needs at least one worker");
        ClusterView {
            epoch: 0,
            alive: vec![true; num_workers],
            incarnation: vec![0; num_workers],
            link_factor: 1.0,
            meta_stall_until: f64::NEG_INFINITY,
        }
    }

    /// Current membership epoch; bumps on every crash or restart.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total workers, dead or alive.
    pub fn num_workers(&self) -> usize {
        self.alive.len()
    }

    /// Whether `worker` is currently up.
    pub fn is_alive(&self, worker: WorkerId) -> bool {
        self.alive.get(worker.index()).copied().unwrap_or(false)
    }

    /// Number of live workers (always ≥ 1 for a valid schedule).
    pub fn n_alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Indices of the live workers, ascending.
    pub fn alive_workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| WorkerId::new(i as u64))
    }

    /// The live-membership bitmap (index = worker).
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// Incarnation of `worker`: 0 until its first restart.
    pub fn incarnation(&self, worker: WorkerId) -> u64 {
        self.incarnation.get(worker.index()).copied().unwrap_or(0)
    }

    /// Current multiplier on network transfer time (1.0 = nominal).
    pub fn link_factor(&self) -> f64 {
        self.link_factor
    }

    /// Whether the meta service is inside a stall window at `now`.
    pub fn meta_stalled(&self, now: f64) -> bool {
        now < self.meta_stall_until
    }

    /// Applies one fault event, returning what changed. Events must come
    /// from a validated [`crate::FaultSchedule`]; applying a crash to a dead
    /// worker (or restart to a live one) panics, because it means the caller
    /// replayed events out of order.
    pub fn apply(&mut self, event: &FaultEvent) -> AppliedFault {
        match event.kind {
            FaultKind::WorkerCrash(w) => {
                assert!(
                    self.alive[w.index()],
                    "{w} crashed while already down — events applied out of order"
                );
                self.alive[w.index()] = false;
                self.epoch += 1;
                AppliedFault::Crashed(w)
            }
            FaultKind::WorkerRestart(w) => {
                assert!(
                    !self.alive[w.index()],
                    "{w} restarted while alive — events applied out of order"
                );
                self.alive[w.index()] = true;
                self.incarnation[w.index()] += 1;
                self.epoch += 1;
                AppliedFault::Restarted(w, self.incarnation[w.index()])
            }
            FaultKind::LinkDegrade { factor } => {
                self.link_factor = factor;
                AppliedFault::LinkFactor(factor)
            }
            FaultKind::LinkRestore => {
                self.link_factor = 1.0;
                AppliedFault::LinkFactor(1.0)
            }
            FaultKind::MetaStall { duration_secs } => {
                self.meta_stall_until = event.at_secs + duration_secs;
                AppliedFault::MetaStalledUntil(self.meta_stall_until)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(at: f64, w: u64) -> FaultEvent {
        FaultEvent {
            at_secs: at,
            kind: FaultKind::WorkerCrash(WorkerId::new(w)),
        }
    }

    fn restart(at: f64, w: u64) -> FaultEvent {
        FaultEvent {
            at_secs: at,
            kind: FaultKind::WorkerRestart(WorkerId::new(w)),
        }
    }

    #[test]
    fn epoch_tracks_membership_changes_only() {
        let mut v = ClusterView::new(4);
        assert_eq!(v.epoch(), 0);
        v.apply(&FaultEvent {
            at_secs: 1.0,
            kind: FaultKind::LinkDegrade { factor: 2.0 },
        });
        assert_eq!(v.epoch(), 0, "link faults do not change membership");
        assert_eq!(v.link_factor(), 2.0);

        assert_eq!(
            v.apply(&crash(2.0, 1)),
            AppliedFault::Crashed(WorkerId::new(1))
        );
        assert_eq!(v.epoch(), 1);
        assert!(!v.is_alive(WorkerId::new(1)));
        assert_eq!(v.n_alive(), 3);
        let alive: Vec<u64> = v.alive_workers().map(|w| w.as_u64()).collect();
        assert_eq!(alive, vec![0, 2, 3]);

        assert_eq!(
            v.apply(&restart(3.0, 1)),
            AppliedFault::Restarted(WorkerId::new(1), 1)
        );
        assert_eq!(v.epoch(), 2);
        assert_eq!(v.incarnation(WorkerId::new(1)), 1);
        assert_eq!(v.incarnation(WorkerId::new(0)), 0);
    }

    #[test]
    fn meta_stall_window_has_an_end() {
        let mut v = ClusterView::new(2);
        assert!(!v.meta_stalled(0.0));
        v.apply(&FaultEvent {
            at_secs: 10.0,
            kind: FaultKind::MetaStall { duration_secs: 5.0 },
        });
        assert!(v.meta_stalled(12.0));
        assert!(!v.meta_stalled(15.0));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn double_crash_panics() {
        let mut v = ClusterView::new(2);
        v.apply(&crash(1.0, 0));
        v.apply(&crash(2.0, 0));
    }
}
