//! Epoch-numbered cluster membership.

use crate::schedule::{FaultEvent, FaultKind};
use bat_types::WorkerId;
use serde::{Deserialize, Serialize};

/// What a [`ClusterView::apply`] call did, so callers can react (invalidate
/// meta entries, re-plan placement, re-warm a worker, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppliedFault {
    /// `worker` just died; its cache contents are gone.
    Crashed(WorkerId),
    /// `worker` just rejoined, empty, with the given new incarnation.
    Restarted(WorkerId, u64),
    /// Network transfer times now multiply by this factor.
    LinkFactor(f64),
    /// The meta service is unresponsive until the given time.
    MetaStalledUntil(f64),
    /// Meta replica `node` just died, losing its log and state.
    MetaCrashed(usize),
    /// Meta replica `node` just rejoined empty and must catch up.
    MetaRestarted(usize),
    /// The link between these two workers was just cut (symmetric).
    LinkCut(WorkerId, WorkerId),
    /// The link between these two workers just healed.
    LinkHealed(WorkerId, WorkerId),
    /// Transfers between these two workers now multiply by the factor
    /// (1.0 = restored to nominal). The pair stays reachable.
    LinkSlowed(WorkerId, WorkerId, f64),
    /// `worker` just left the membership *gracefully*: its queued work has
    /// been migrated, nothing in flight was lost, but its cache contents
    /// leave with the process.
    Drained(WorkerId),
    /// A fresh worker just took over this slot with the given new
    /// incarnation; it joins empty and must re-warm like a restart.
    Joined(WorkerId, u64),
}

/// Live membership of the cache-worker cluster.
///
/// The `epoch` advances on every *worker* membership change (crash or
/// restart), so downstream caches of placement decisions can cheaply detect
/// staleness. Each worker also carries an `incarnation` counter, bumped when
/// it rejoins: warmth recorded under an old incarnation must not count for
/// the rejoined (empty) worker. Meta-replica liveness and per-link
/// partitions are tracked alongside but do not bump the worker epoch — the
/// replicated meta group fences with its own election epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterView {
    epoch: u64,
    alive: Vec<bool>,
    incarnation: Vec<u64>,
    link_factor: f64,
    meta_stall_until: f64,
    /// Liveness of the replicated meta group, index = replica id.
    #[serde(default)]
    meta_alive: Vec<bool>,
    /// Symmetric worker-pair link cuts, row-major `a * n + b`.
    #[serde(default)]
    link_cut: Vec<bool>,
    /// Symmetric per-link slowdown factors, row-major `a * n + b`; empty
    /// (views from before slow links existed) reads as all-nominal.
    #[serde(default)]
    link_slow: Vec<f64>,
}

impl ClusterView {
    /// A fresh view with all `num_workers` workers alive at epoch 0 and a
    /// default-sized meta group (see [`crate::DEFAULT_META_NODES`]).
    pub fn new(num_workers: usize) -> Self {
        ClusterView::with_meta(num_workers, crate::schedule::DEFAULT_META_NODES)
    }

    /// A fresh view with an explicit meta-group size.
    pub fn with_meta(num_workers: usize, meta_nodes: usize) -> Self {
        assert!(num_workers > 0, "cluster needs at least one worker");
        assert!(meta_nodes > 0, "meta group needs at least one replica");
        ClusterView {
            epoch: 0,
            alive: vec![true; num_workers],
            incarnation: vec![0; num_workers],
            link_factor: 1.0,
            meta_stall_until: f64::NEG_INFINITY,
            meta_alive: vec![true; meta_nodes],
            link_cut: vec![false; num_workers * num_workers],
            link_slow: vec![1.0; num_workers * num_workers],
        }
    }

    /// Current membership epoch; bumps on every crash or restart.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total workers, dead or alive.
    pub fn num_workers(&self) -> usize {
        self.alive.len()
    }

    /// Whether `worker` is currently up.
    pub fn is_alive(&self, worker: WorkerId) -> bool {
        self.alive.get(worker.index()).copied().unwrap_or(false)
    }

    /// Number of live workers (always ≥ 1 for a valid schedule).
    pub fn n_alive(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Indices of the live workers, ascending.
    pub fn alive_workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| WorkerId::new(i as u64))
    }

    /// The live-membership bitmap (index = worker).
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// Incarnation of `worker`: 0 until its first restart.
    pub fn incarnation(&self, worker: WorkerId) -> u64 {
        self.incarnation.get(worker.index()).copied().unwrap_or(0)
    }

    /// Current multiplier on network transfer time (1.0 = nominal).
    pub fn link_factor(&self) -> f64 {
        self.link_factor
    }

    /// Whether the meta service is inside a stall window at `now`.
    pub fn meta_stalled(&self, now: f64) -> bool {
        now < self.meta_stall_until
    }

    /// Size of the replicated meta group this view tracks.
    pub fn meta_nodes(&self) -> usize {
        self.meta_alive.len()
    }

    /// Whether meta replica `node` is currently up. Out-of-range (including
    /// views deserialized from before meta faults existed) reads as alive.
    pub fn meta_is_alive(&self, node: usize) -> bool {
        self.meta_alive.get(node).copied().unwrap_or(true)
    }

    /// Number of live meta replicas.
    pub fn n_meta_alive(&self) -> usize {
        self.meta_alive.iter().filter(|&&a| a).count()
    }

    /// Whether workers `a` and `b` can talk: both alive and the `a<->b`
    /// link not cut. A worker always reaches itself while alive. Views
    /// deserialized from before partitions existed have every link intact.
    pub fn reachable(&self, a: WorkerId, b: WorkerId) -> bool {
        if !self.is_alive(a) || !self.is_alive(b) {
            return false;
        }
        if a == b {
            return true;
        }
        let n = self.alive.len();
        !self
            .link_cut
            .get(a.index() * n + b.index())
            .copied()
            .unwrap_or(false)
    }

    /// Number of currently cut links (unordered pairs).
    pub fn cut_links(&self) -> usize {
        self.link_cut.iter().filter(|&&c| c).count() / 2
    }

    /// Per-link slowdown multiplier for transfers between `a` and `b`
    /// (1.0 = nominal). Composes with the global [`ClusterView::link_factor`];
    /// self-transfers and unknown pairs are nominal.
    pub fn link_slow_factor(&self, a: WorkerId, b: WorkerId) -> f64 {
        if a == b {
            return 1.0;
        }
        let n = self.alive.len();
        self.link_slow
            .get(a.index() * n + b.index())
            .copied()
            .unwrap_or(1.0)
    }

    /// Number of currently slowed links (unordered pairs with factor > 1).
    pub fn slow_links(&self) -> usize {
        self.link_slow.iter().filter(|&&f| f > 1.0).count() / 2
    }

    /// Applies one fault event, returning what changed. Events must come
    /// from a validated [`crate::FaultSchedule`]; applying a crash to a dead
    /// worker (or restart to a live one) panics, because it means the caller
    /// replayed events out of order.
    pub fn apply(&mut self, event: &FaultEvent) -> AppliedFault {
        match event.kind {
            FaultKind::WorkerCrash(w) => {
                assert!(
                    self.alive[w.index()],
                    "{w} crashed while already down — events applied out of order"
                );
                self.alive[w.index()] = false;
                self.epoch += 1;
                AppliedFault::Crashed(w)
            }
            FaultKind::WorkerRestart(w) => {
                assert!(
                    !self.alive[w.index()],
                    "{w} restarted while alive — events applied out of order"
                );
                self.alive[w.index()] = true;
                self.incarnation[w.index()] += 1;
                self.epoch += 1;
                AppliedFault::Restarted(w, self.incarnation[w.index()])
            }
            FaultKind::LinkDegrade { factor } => {
                self.link_factor = factor;
                AppliedFault::LinkFactor(factor)
            }
            FaultKind::LinkRestore => {
                self.link_factor = 1.0;
                AppliedFault::LinkFactor(1.0)
            }
            FaultKind::MetaStall { duration_secs } => {
                self.meta_stall_until = event.at_secs + duration_secs;
                AppliedFault::MetaStalledUntil(self.meta_stall_until)
            }
            FaultKind::MetaCrash(m) => {
                if self.meta_alive.len() <= m {
                    self.meta_alive.resize(m + 1, true);
                }
                assert!(
                    self.meta_alive[m],
                    "meta replica {m} crashed while already down — events applied out of order"
                );
                self.meta_alive[m] = false;
                AppliedFault::MetaCrashed(m)
            }
            FaultKind::MetaRestart(m) => {
                assert!(
                    self.meta_alive.get(m) == Some(&false),
                    "meta replica {m} restarted while alive — events applied out of order"
                );
                self.meta_alive[m] = true;
                AppliedFault::MetaRestarted(m)
            }
            FaultKind::CutLink { a, b } => {
                let n = self.alive.len();
                if self.link_cut.len() < n * n {
                    self.link_cut.resize(n * n, false);
                }
                assert!(
                    !self.link_cut[a.index() * n + b.index()],
                    "link {a}<->{b} cut while already cut — events applied out of order"
                );
                self.link_cut[a.index() * n + b.index()] = true;
                self.link_cut[b.index() * n + a.index()] = true;
                AppliedFault::LinkCut(a, b)
            }
            FaultKind::HealLink { a, b } => {
                let n = self.alive.len();
                assert!(
                    self.link_cut.get(a.index() * n + b.index()) == Some(&true),
                    "link {a}<->{b} healed while intact — events applied out of order"
                );
                self.link_cut[a.index() * n + b.index()] = false;
                self.link_cut[b.index() * n + a.index()] = false;
                AppliedFault::LinkHealed(a, b)
            }
            FaultKind::WorkerDrain(w) => {
                assert!(
                    self.alive[w.index()],
                    "{w} drained while already out — events applied out of order"
                );
                self.alive[w.index()] = false;
                self.epoch += 1;
                AppliedFault::Drained(w)
            }
            FaultKind::WorkerJoin(w) => {
                assert!(
                    !self.alive[w.index()],
                    "{w} joined while its slot is occupied — events applied out of order"
                );
                self.alive[w.index()] = true;
                self.incarnation[w.index()] += 1;
                self.epoch += 1;
                AppliedFault::Joined(w, self.incarnation[w.index()])
            }
            FaultKind::SlowLink { a, b, factor } => {
                let n = self.alive.len();
                if self.link_slow.len() < n * n {
                    self.link_slow.resize(n * n, 1.0);
                }
                self.link_slow[a.index() * n + b.index()] = factor;
                self.link_slow[b.index() * n + a.index()] = factor;
                AppliedFault::LinkSlowed(a, b, factor)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(at: f64, w: u64) -> FaultEvent {
        FaultEvent {
            at_secs: at,
            kind: FaultKind::WorkerCrash(WorkerId::new(w)),
        }
    }

    fn restart(at: f64, w: u64) -> FaultEvent {
        FaultEvent {
            at_secs: at,
            kind: FaultKind::WorkerRestart(WorkerId::new(w)),
        }
    }

    #[test]
    fn epoch_tracks_membership_changes_only() {
        let mut v = ClusterView::new(4);
        assert_eq!(v.epoch(), 0);
        v.apply(&FaultEvent {
            at_secs: 1.0,
            kind: FaultKind::LinkDegrade { factor: 2.0 },
        });
        assert_eq!(v.epoch(), 0, "link faults do not change membership");
        assert_eq!(v.link_factor(), 2.0);

        assert_eq!(
            v.apply(&crash(2.0, 1)),
            AppliedFault::Crashed(WorkerId::new(1))
        );
        assert_eq!(v.epoch(), 1);
        assert!(!v.is_alive(WorkerId::new(1)));
        assert_eq!(v.n_alive(), 3);
        let alive: Vec<u64> = v.alive_workers().map(|w| w.as_u64()).collect();
        assert_eq!(alive, vec![0, 2, 3]);

        assert_eq!(
            v.apply(&restart(3.0, 1)),
            AppliedFault::Restarted(WorkerId::new(1), 1)
        );
        assert_eq!(v.epoch(), 2);
        assert_eq!(v.incarnation(WorkerId::new(1)), 1);
        assert_eq!(v.incarnation(WorkerId::new(0)), 0);
    }

    #[test]
    fn drain_and_join_track_membership_and_incarnation() {
        let mut v = ClusterView::new(3);
        assert_eq!(
            v.apply(&FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::WorkerDrain(WorkerId::new(2)),
            }),
            AppliedFault::Drained(WorkerId::new(2))
        );
        assert_eq!(v.epoch(), 1, "drain is a membership change");
        assert!(!v.is_alive(WorkerId::new(2)));
        assert_eq!(v.n_alive(), 2);

        assert_eq!(
            v.apply(&FaultEvent {
                at_secs: 2.0,
                kind: FaultKind::WorkerJoin(WorkerId::new(2)),
            }),
            AppliedFault::Joined(WorkerId::new(2), 1)
        );
        assert_eq!(v.epoch(), 2);
        assert!(v.is_alive(WorkerId::new(2)));
        assert_eq!(
            v.incarnation(WorkerId::new(2)),
            1,
            "a joined worker is a fresh process, fenced by incarnation"
        );
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn drain_of_downed_worker_panics() {
        let mut v = ClusterView::new(2);
        v.apply(&crash(1.0, 0));
        v.apply(&FaultEvent {
            at_secs: 2.0,
            kind: FaultKind::WorkerDrain(WorkerId::new(0)),
        });
    }

    #[test]
    fn meta_stall_window_has_an_end() {
        let mut v = ClusterView::new(2);
        assert!(!v.meta_stalled(0.0));
        v.apply(&FaultEvent {
            at_secs: 10.0,
            kind: FaultKind::MetaStall { duration_secs: 5.0 },
        });
        assert!(v.meta_stalled(12.0));
        assert!(!v.meta_stalled(15.0));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn double_crash_panics() {
        let mut v = ClusterView::new(2);
        v.apply(&crash(1.0, 0));
        v.apply(&crash(2.0, 0));
    }

    #[test]
    fn meta_faults_and_partitions_do_not_bump_worker_epoch() {
        let mut v = ClusterView::with_meta(4, 3);
        assert_eq!(v.meta_nodes(), 3);
        assert_eq!(v.n_meta_alive(), 3);

        assert_eq!(
            v.apply(&FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::MetaCrash(1),
            }),
            AppliedFault::MetaCrashed(1)
        );
        assert_eq!(v.epoch(), 0, "meta liveness is not worker membership");
        assert!(!v.meta_is_alive(1));
        assert_eq!(v.n_meta_alive(), 2);

        assert_eq!(
            v.apply(&FaultEvent {
                at_secs: 2.0,
                kind: FaultKind::MetaRestart(1),
            }),
            AppliedFault::MetaRestarted(1)
        );
        assert!(v.meta_is_alive(1));

        let (a, b) = (WorkerId::new(0), WorkerId::new(2));
        assert!(v.reachable(a, b));
        v.apply(&FaultEvent {
            at_secs: 3.0,
            kind: FaultKind::CutLink { a, b },
        });
        assert_eq!(v.epoch(), 0, "partitions are not membership changes");
        assert!(!v.reachable(a, b));
        assert!(!v.reachable(b, a), "cuts are symmetric");
        assert!(v.reachable(a, WorkerId::new(1)), "other pairs unaffected");
        assert!(v.reachable(a, a), "a live worker reaches itself");
        assert_eq!(v.cut_links(), 1);

        v.apply(&FaultEvent {
            at_secs: 4.0,
            kind: FaultKind::HealLink { a: b, b: a },
        });
        assert!(v.reachable(a, b));
        assert_eq!(v.cut_links(), 0);
    }

    #[test]
    fn slow_links_scale_without_cutting_reachability() {
        let mut v = ClusterView::new(4);
        let (a, b) = (WorkerId::new(0), WorkerId::new(3));
        assert_eq!(v.link_slow_factor(a, b), 1.0);
        assert_eq!(
            v.apply(&FaultEvent {
                at_secs: 1.0,
                kind: FaultKind::SlowLink { a, b, factor: 8.0 },
            }),
            AppliedFault::LinkSlowed(a, b, 8.0)
        );
        assert_eq!(v.epoch(), 0, "slow links are not membership changes");
        assert_eq!(v.link_slow_factor(a, b), 8.0);
        assert_eq!(v.link_slow_factor(b, a), 8.0, "slowdowns are symmetric");
        assert_eq!(v.link_slow_factor(a, WorkerId::new(1)), 1.0);
        assert_eq!(v.link_slow_factor(a, a), 1.0, "self-transfer is local");
        assert!(v.reachable(a, b), "a slow link is still reachable");
        assert_eq!(v.slow_links(), 1);

        v.apply(&FaultEvent {
            at_secs: 2.0,
            kind: FaultKind::SlowLink { a, b, factor: 1.0 },
        });
        assert_eq!(v.link_slow_factor(a, b), 1.0);
        assert_eq!(v.slow_links(), 0);
    }

    #[test]
    fn dead_workers_are_unreachable_regardless_of_links() {
        let mut v = ClusterView::new(3);
        v.apply(&crash(1.0, 2));
        assert!(!v.reachable(WorkerId::new(0), WorkerId::new(2)));
        assert!(!v.reachable(WorkerId::new(2), WorkerId::new(2)));
        assert!(v.reachable(WorkerId::new(0), WorkerId::new(1)));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn double_meta_crash_panics() {
        let mut v = ClusterView::with_meta(2, 3);
        v.apply(&FaultEvent {
            at_secs: 1.0,
            kind: FaultKind::MetaCrash(0),
        });
        v.apply(&FaultEvent {
            at_secs: 2.0,
            kind: FaultKind::MetaCrash(0),
        });
    }
}
