//! Fault/recovery accounting that lands in `RunStats`.

use serde::{Deserialize, Serialize};

/// Counters describing what the fault subsystem did to a run and how the
/// system recovered.
///
/// Everything here is *planning-deterministic*: the counters derive from
/// the trace, the schedule, and the planner's decisions — never from
/// wall-clock timing — so the same seed and schedule produce bit-identical
/// reports in `bat-sim`, and matching cache accounting in `bat-serve`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Cache-worker crashes injected.
    pub crashes: u64,
    /// Worker restarts injected.
    pub restarts: u64,
    /// Link-degradation windows injected.
    pub link_degrades: u64,
    /// Meta-service stall windows injected.
    pub meta_stalls: u64,
    /// Cache entries invalidated by the meta service on worker loss.
    pub invalidated_entries: u64,
    /// Bytes those invalidated entries held.
    pub invalidated_bytes: u64,
    /// Requests whose hot item hits were served by a surviving HRCS
    /// replica instead of the request's dead local worker.
    pub replica_hits_during_outage: u64,
    /// Item lookups that fell back to recompute because the item's cold
    /// shard lived on a dead worker.
    pub recompute_fallbacks: u64,
    /// Requests planned inside a meta-service stall window and therefore
    /// forced to full recompute.
    pub stall_forced_recomputes: u64,
    /// Items proactively re-warmed onto a restarted worker.
    pub rewarmed_items: u64,
    /// Meta-replica crashes injected.
    #[serde(default)]
    pub meta_crashes: u64,
    /// Meta-replica restarts (snapshot + log-replay catch-ups) injected.
    #[serde(default)]
    pub meta_restarts: u64,
    /// Leader elections the replicated meta group ran (including the
    /// initial one, when a replicated group served the run).
    #[serde(default)]
    pub meta_elections: u64,
    /// Election epoch the meta group ended the run at (0 when the run used
    /// a local, unreplicated meta index).
    #[serde(default)]
    pub meta_final_epoch: u64,
    /// Stale-epoch appends rejected by epoch fencing.
    #[serde(default)]
    pub meta_fenced_appends: u64,
    /// Snapshot installs performed to catch rejoining replicas up.
    #[serde(default)]
    pub meta_snapshot_installs: u64,
    /// Per-link partition windows injected (cut events).
    #[serde(default)]
    pub link_partitions: u64,
    /// Elections forced by the meta client because the current leader was
    /// unreachable across a cut link.
    #[serde(default)]
    pub meta_unreachable_leader_elections: u64,
    /// Item lookups that had to skip a warm KV holder because the requester
    /// could not reach it under the current partition view (served by
    /// another reachable holder when one existed, recomputed otherwise).
    #[serde(default)]
    pub unreachable_kv_fallbacks: u64,
    /// Per-link slowdown windows injected (slow-link events with factor > 1).
    #[serde(default)]
    pub slow_links: u64,
    /// Remote KV pulls the planner dual-issued because the primary path
    /// crossed a slowed link.
    #[serde(default)]
    pub hedged_pulls: u64,
    /// Hedged pulls where the secondary (hedge) copy won the race.
    #[serde(default)]
    pub hedge_wins: u64,
    /// Remote pulls retried with seeded jittered backoff after the direct
    /// path priced out against the request's deadline slack.
    #[serde(default)]
    pub backoff_retries: u64,
    /// Brownout-ladder rung transitions (each escalation or relaxation).
    #[serde(default)]
    pub brownout_transitions: u64,
    /// Deepest brownout rung reached (0 = never browned out, 3 = shedding).
    #[serde(default)]
    pub max_brownout_rung: u8,
    /// Background re-warm/refresh passes suspended by brownout rung 1.
    #[serde(default)]
    pub suspended_refreshes: u64,
    /// Cold remote pulls degraded to local recompute by brownout rung 2.
    #[serde(default)]
    pub brownout_recomputes: u64,
    /// Planned worker drains (graceful scale-in with work migration).
    #[serde(default)]
    pub drains: u64,
    /// Planned worker joins (fresh workers re-planned into the slot map).
    #[serde(default)]
    pub joins: u64,
    /// Steady-state hit rate observed before the first crash.
    pub pre_fault_hit_rate: f64,
    /// Lowest windowed hit rate observed after the first crash.
    pub min_hit_rate_after_fault: f64,
    /// Depth of the hit-rate dip: pre-fault steady state minus the
    /// post-fault minimum (0 when no fault fired or nothing dipped).
    pub hit_rate_dip: f64,
    /// Seconds from the first crash until the windowed hit rate returned
    /// to within 5% of the pre-fault steady state; negative when it never
    /// recovered inside the trace.
    pub time_to_recover_secs: f64,
}

impl FaultReport {
    /// True when no fault of any kind fired during the run.
    pub fn is_quiet(&self) -> bool {
        self.crashes == 0
            && self.restarts == 0
            && self.link_degrades == 0
            && self.meta_stalls == 0
            && self.meta_crashes == 0
            && self.link_partitions == 0
            && self.slow_links == 0
            && self.drains == 0
            && self.joins == 0
    }

    /// Fills the recovery metrics from a windowed hit-rate timeline
    /// (`(window_end_secs, hit_rate)` points, time-ascending) and the time
    /// of the first crash. Recovery means the windowed hit rate is back
    /// within `tolerance` (absolute) of the pre-fault steady state.
    pub fn compute_recovery(
        &mut self,
        timeline: &[(f64, f64)],
        first_crash_at: Option<f64>,
        tolerance: f64,
    ) {
        let Some(crash_at) = first_crash_at else {
            return;
        };
        let pre: Vec<f64> = timeline
            .iter()
            .filter(|(t, _)| *t <= crash_at)
            .map(|(_, h)| *h)
            .collect();
        if pre.is_empty() {
            return;
        }
        self.pre_fault_hit_rate = pre.iter().sum::<f64>() / pre.len() as f64;
        let post: Vec<(f64, f64)> = timeline
            .iter()
            .filter(|(t, _)| *t > crash_at)
            .copied()
            .collect();
        if post.is_empty() {
            return;
        }
        self.min_hit_rate_after_fault = post.iter().map(|(_, h)| *h).fold(f64::INFINITY, f64::min);
        self.hit_rate_dip = (self.pre_fault_hit_rate - self.min_hit_rate_after_fault).max(0.0);
        // Recovery: the first window after the dip bottom that is back
        // within tolerance of steady state.
        let bottom_at = post
            .iter()
            .find(|(_, h)| *h <= self.min_hit_rate_after_fault + 1e-12)
            .map(|(t, _)| *t)
            .unwrap_or(crash_at);
        self.time_to_recover_secs = post
            .iter()
            .find(|(t, h)| *t >= bottom_at && *h >= self.pre_fault_hit_rate - tolerance)
            .map(|(t, _)| t - crash_at)
            .unwrap_or(-1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet() {
        let r = FaultReport::default();
        assert!(r.is_quiet());
        assert_eq!(r.hit_rate_dip, 0.0);
    }

    #[test]
    fn recovery_metrics_from_timeline() {
        let timeline = vec![
            (10.0, 0.80),
            (20.0, 0.82),
            (30.0, 0.81), // crash at 30
            (40.0, 0.40), // dip
            (50.0, 0.55),
            (60.0, 0.79), // recovered (within 0.05 of ~0.81)
            (70.0, 0.81),
        ];
        let mut r = FaultReport {
            crashes: 1,
            ..FaultReport::default()
        };
        r.compute_recovery(&timeline, Some(30.0), 0.05);
        assert!((r.pre_fault_hit_rate - 0.81).abs() < 1e-9);
        assert!((r.min_hit_rate_after_fault - 0.40).abs() < 1e-9);
        assert!((r.hit_rate_dip - 0.41).abs() < 1e-9);
        assert!((r.time_to_recover_secs - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unrecovered_runs_report_negative_time() {
        let timeline = vec![(10.0, 0.8), (20.0, 0.3), (30.0, 0.4)];
        let mut r = FaultReport::default();
        r.compute_recovery(&timeline, Some(15.0), 0.05);
        assert_eq!(r.time_to_recover_secs, -1.0);
        assert!(r.hit_rate_dip > 0.0);
    }

    #[test]
    fn no_crash_means_no_recovery_metrics() {
        let mut r = FaultReport::default();
        r.compute_recovery(&[(10.0, 0.5)], None, 0.05);
        assert_eq!(r.pre_fault_hit_rate, 0.0);
        assert_eq!(r.time_to_recover_secs, 0.0);
    }

    #[test]
    fn serializes_with_defaults() {
        let r = FaultReport::default();
        let json = serde_json::to_string(&r).unwrap();
        let back: FaultReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
