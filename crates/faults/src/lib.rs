//! `bat-faults`: deterministic fault injection for the BAT serving stack.
//!
//! The paper's disaggregated KV-cache pool (§5.1) and HRCS placement (§5.2)
//! assume cache workers never fail; at production scale they do. This crate
//! is the shared fault model for both execution paths:
//!
//! * [`FaultSchedule`] — a validated, time-ordered list of fault events
//!   (cache-worker crash, worker restart, link-bandwidth degradation,
//!   meta-service stall). Schedules are plain data: the same schedule drives
//!   the discrete-event simulator (`bat-sim`, faults as heap events) and the
//!   threaded runtime (`bat-serve`, faults as real thread shutdown/respawn),
//!   which is what makes the two paths' cache accounting comparable under
//!   failure. [`FaultSchedule::random`] generates seeded schedules that are
//!   valid by construction.
//! * [`ClusterView`] — epoch-numbered membership: which cache workers are
//!   alive, each worker's incarnation (bumped on restart, so warmth earned
//!   before a crash never leaks across it), the current link-bandwidth
//!   factor, and any active meta-service stall window.
//! * [`FaultCursor`] — a replay cursor that applies due events to a view in
//!   schedule order, independent of how the caller discovers time.
//! * [`FaultReport`] — the fault/recovery counters that land in `RunStats`.

mod cursor;
mod report;
mod schedule;
mod view;

pub use cursor::FaultCursor;
pub use report::FaultReport;
pub use schedule::{FaultEvent, FaultKind, FaultSchedule, DEFAULT_META_NODES};
pub use view::{AppliedFault, ClusterView};
