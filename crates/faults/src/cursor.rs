//! Replay cursor: applies scheduled faults to a view as time advances.

use crate::schedule::{FaultEvent, FaultSchedule};
use crate::view::{AppliedFault, ClusterView};

/// Walks a [`FaultSchedule`] in time order, applying each due event to a
/// [`ClusterView`].
///
/// Both execution paths use the same cursor: the simulator advances it from
/// heap-event timestamps, the threaded runtime from nominal request-arrival
/// times (not jittery wall-clock readings), which is what keeps the two
/// paths' fault handling — and therefore their cache accounting —
/// identical for a given trace and schedule.
#[derive(Debug, Clone)]
pub struct FaultCursor {
    schedule: FaultSchedule,
    next: usize,
}

impl FaultCursor {
    /// A cursor at the start of `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        FaultCursor { schedule, next: 0 }
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Time of the next unapplied event, if any.
    pub fn next_at(&self) -> Option<f64> {
        self.schedule.events().get(self.next).map(|e| e.at_secs)
    }

    /// Applies every event with `at_secs <= now` to `view`, invoking
    /// `on_applied` for each in schedule order. Idempotent for a fixed
    /// `now`: already-applied events never fire again.
    pub fn advance_to(
        &mut self,
        now: f64,
        view: &mut ClusterView,
        mut on_applied: impl FnMut(&FaultEvent, AppliedFault),
    ) {
        while let Some(event) = self.schedule.events().get(self.next) {
            if event.at_secs > now {
                break;
            }
            let applied = view.apply(event);
            on_applied(event, applied);
            self.next += 1;
        }
    }

    /// True once every event has been applied.
    pub fn exhausted(&self) -> bool {
        self.next >= self.schedule.events().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultKind;
    use bat_types::WorkerId;

    #[test]
    fn advance_applies_due_events_once() {
        let schedule = FaultSchedule::single_crash(4, WorkerId::new(2), 10.0, 20.0).unwrap();
        let mut cursor = FaultCursor::new(schedule);
        let mut view = ClusterView::new(4);
        assert_eq!(cursor.next_at(), Some(10.0));

        let mut fired = Vec::new();
        cursor.advance_to(5.0, &mut view, |e, _| fired.push(e.at_secs));
        assert!(fired.is_empty());
        assert_eq!(view.n_alive(), 4);

        cursor.advance_to(15.0, &mut view, |e, _| fired.push(e.at_secs));
        assert_eq!(fired, vec![10.0]);
        assert!(!view.is_alive(WorkerId::new(2)));

        // Replaying the same instant applies nothing new.
        cursor.advance_to(15.0, &mut view, |e, _| fired.push(e.at_secs));
        assert_eq!(fired, vec![10.0]);

        cursor.advance_to(1e9, &mut view, |e, _| fired.push(e.at_secs));
        assert_eq!(fired, vec![10.0, 20.0]);
        assert!(view.is_alive(WorkerId::new(2)));
        assert!(cursor.exhausted());
    }

    #[test]
    fn same_timestamp_events_apply_in_schedule_order() {
        let schedule = FaultSchedule::new(
            2,
            vec![
                FaultEvent {
                    at_secs: 5.0,
                    kind: FaultKind::WorkerCrash(WorkerId::new(0)),
                },
                FaultEvent {
                    at_secs: 5.0,
                    kind: FaultKind::WorkerRestart(WorkerId::new(0)),
                },
            ],
        )
        .unwrap();
        let mut cursor = FaultCursor::new(schedule);
        let mut view = ClusterView::new(2);
        let mut kinds = Vec::new();
        cursor.advance_to(5.0, &mut view, |e, _| kinds.push(e.kind));
        assert_eq!(kinds.len(), 2);
        assert!(view.is_alive(WorkerId::new(0)));
        assert_eq!(view.incarnation(WorkerId::new(0)), 1);
    }
}
