//! JSON roundtrip property for [`FaultReport`].
//!
//! Experiment artifacts persist fault reports as JSON and the determinism
//! digest hashes the report's rendering, so serialization must be a exact
//! bijection on the values runs actually produce: every counter and every
//! finite float must survive `to_string` → `from_str` unchanged.

use bat_faults::FaultReport;
use proptest::prelude::*;
use proptest::TestRng;

/// A finite f64 derived from random bits (JSON has no NaN/inf encoding;
/// runs only ever report finite rates and durations).
fn finite_f64(rng: &mut TestRng) -> f64 {
    let v = f64::from_bits(rng.next_u64());
    if v.is_finite() {
        v
    } else {
        // Map the mantissa into a plain fraction instead.
        (rng.next_u64() % 1_000_000) as f64 / 997.0
    }
}

fn any_report(rng: &mut TestRng) -> FaultReport {
    let mut r = FaultReport {
        crashes: rng.next_u64(),
        restarts: rng.next_u64(),
        link_degrades: rng.next_u64(),
        meta_stalls: rng.next_u64(),
        invalidated_entries: rng.next_u64(),
        invalidated_bytes: rng.next_u64(),
        replica_hits_during_outage: rng.next_u64(),
        recompute_fallbacks: rng.next_u64(),
        stall_forced_recomputes: rng.next_u64(),
        rewarmed_items: rng.next_u64(),
        meta_crashes: rng.next_u64(),
        meta_restarts: rng.next_u64(),
        meta_elections: rng.next_u64(),
        meta_final_epoch: rng.next_u64(),
        meta_fenced_appends: rng.next_u64(),
        meta_snapshot_installs: rng.next_u64(),
        link_partitions: rng.next_u64(),
        meta_unreachable_leader_elections: rng.next_u64(),
        unreachable_kv_fallbacks: rng.next_u64(),
        slow_links: rng.next_u64(),
        hedged_pulls: rng.next_u64(),
        hedge_wins: rng.next_u64(),
        backoff_retries: rng.next_u64(),
        brownout_transitions: rng.next_u64(),
        max_brownout_rung: (rng.next_u64() % 4) as u8,
        suspended_refreshes: rng.next_u64(),
        brownout_recomputes: rng.next_u64(),
        ..FaultReport::default()
    };
    r.pre_fault_hit_rate = finite_f64(rng);
    r.min_hit_rate_after_fault = finite_f64(rng);
    r.hit_rate_dip = finite_f64(rng);
    r.time_to_recover_secs = finite_f64(rng);
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fault_report_json_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let report = any_report(&mut rng);
        let json = serde_json::to_string(&report).expect("report serializes");
        let back: FaultReport = serde_json::from_str(&json).expect("report deserializes");
        prop_assert_eq!(&back, &report);
        // Second hop is byte-stable, so artifacts can be re-serialized.
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn quiet_report_omitted_fields_default(seed in 0u64..u64::MAX) {
        // Old artifacts written before the newer counters existed decode
        // with those counters zeroed (the `#[serde(default)]` contract).
        let mut rng = TestRng::from_seed(seed);
        let report = any_report(&mut rng);
        let json = serde_json::to_string(&report).unwrap();
        // Strip one defaulted field from the serialized object entirely.
        let needle = format!("\"hedged_pulls\":{},", report.hedged_pulls);
        prop_assume!(json.contains(&needle));
        let stripped = json.replace(&needle, "");
        let back: FaultReport = serde_json::from_str(&stripped).expect("defaulted field decodes");
        prop_assert_eq!(back.hedged_pulls, 0);
        prop_assert_eq!(back.crashes, report.crashes);
    }
}
