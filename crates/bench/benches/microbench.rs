//! Criterion microbenchmarks of the hot paths.
//!
//! These complement the figure harnesses (which measure *simulated* serving
//! performance) by measuring the *actual* cost of the reproduction's own
//! kernels: the transformer forward pass with and without prefix caching,
//! the per-request planner, the batch former, workload sampling, the
//! frequency estimator, placement lookups and user-cache admission.

use bat_model::prompt::{MaskScheme, PromptLayout};
use bat_model::{GrModel, GrModelConfig, HstuModel, Weights};
use bat_placement::{ItemPlacementPlan, PlacementStrategy};
use bat_sched::BatchFormer;
use bat_sim::{EngineConfig, RequestPlanner, SystemKind};
use bat_types::{
    Bytes, ClusterConfig, DatasetConfig, ItemId, ModelConfig, PrefixKind, RequestId, SimTime,
    UserId, WorkerId,
};
use bat_workload::{TraceGenerator, Workload, ZipfLaw};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn prompt_parts() -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
    let user: Vec<u32> = (0..48).map(|i| 100 + i).collect();
    let items: Vec<Vec<u32>> = (0..20u32).map(|i| vec![i, 200 + i]).collect();
    (user, items, vec![250, 251])
}

fn bench_forward(c: &mut Criterion) {
    let model = GrModel::new(Weights::random(GrModelConfig::tiny(300), 7));
    let layout = PromptLayout::new(MaskScheme::Bipartite);
    let (user, items, instr) = prompt_parts();
    let up = layout.build(PrefixKind::User, &user, &items, &instr);
    let ip = layout.build(PrefixKind::Item, &user, &items, &instr);
    let item_block: usize = items.iter().map(Vec::len).sum();
    let (prefix_seq, rest) = ip.split_at(item_block);
    let prefix_kv = model.compute_kv(&prefix_seq);

    let mut g = c.benchmark_group("forward");
    g.sample_size(20);
    g.bench_function("up_full", |b| {
        b.iter(|| black_box(model.forward(black_box(&up), None)))
    });
    g.bench_function("ip_full", |b| {
        b.iter(|| black_box(model.forward(black_box(&ip), None)))
    });
    g.bench_function("ip_prefix_cached", |b| {
        b.iter(|| black_box(model.forward(black_box(&rest), Some(&prefix_kv))))
    });
    let hstu_cfg = GrModelConfig {
        query_heads: 2,
        kv_heads: 2,
        ..GrModelConfig::tiny(300)
    };
    let hstu = HstuModel::random(hstu_cfg, 7);
    g.bench_function("hstu_ip_full", |b| {
        b.iter(|| black_box(hstu.forward(black_box(&ip), None)))
    });
    g.bench_function("kv_quantize_fp16", |b| {
        b.iter_batched(
            || prefix_kv.clone(),
            |mut kv| black_box(kv.quantize_fp16()),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    let ds = DatasetConfig::industry();
    let cfg = EngineConfig::for_system(
        SystemKind::Bat,
        ModelConfig::qwen2_1_5b(),
        ClusterConfig::a100_4node(),
        &ds,
    );
    let mut gen = TraceGenerator::new(Workload::new(ds, 3), 4);
    let trace = gen.generate(20.0, 100.0);
    c.bench_function("planner_plan_request", |b| {
        b.iter_batched(
            || (RequestPlanner::from_config(&cfg), 0usize),
            |(mut planner, _)| {
                for (i, req) in trace.iter().enumerate() {
                    black_box(planner.plan(req, i as f64 * 0.01));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_batching(c: &mut Criterion) {
    let queue: Vec<(RequestId, u32)> = (0..1024)
        .map(|i| (RequestId::new(i), 200 + (i as u32 * 37) % 3000))
        .collect();
    let mut g = c.benchmark_group("batch_former");
    for budget in [2000u32, 4000, 8000] {
        g.bench_function(format!("max_tokens_{budget}"), |b| {
            let former = BatchFormer::new(budget);
            b.iter(|| black_box(former.form(black_box(&queue))))
        });
    }
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let w = Workload::new(DatasetConfig::industry(), 9);
    let law = ZipfLaw::new(100_000_000, 1.05);
    let mut g = c.benchmark_group("workload");
    g.bench_function("user_token_count", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(w.user_token_count(UserId::new(i)))
        })
    });
    g.bench_function("zipf_sample_100m", |b| {
        let mut u = 0.123f64;
        b.iter(|| {
            u = (u * 1.61803).fract().max(1e-9);
            black_box(law.sample_rank(u))
        })
    });
    g.bench_function("retrieve_100_candidates", |b| {
        let mut i = 0u64;
        b.iter(|| {
            black_box(w.retrieve_candidates(100, || {
                i = i.wrapping_add(1);
                bat_workload::hashing::uniform01(1, i, 0)
            }))
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    use bat_kvcache::{FreqEstimator, UserCache, UserCacheConfig};
    let mut g = c.benchmark_group("cache");
    g.bench_function("freq_record_and_query", |b| {
        let mut est = FreqEstimator::new(600.0);
        let mut t = 0.0f64;
        b.iter(|| {
            t += 0.01;
            est.record(UserId::new((t * 100.0) as u64 % 1000), t);
            black_box(est.rate(&UserId::new(7), t))
        })
    });
    g.bench_function("user_cache_admit_churn", |b| {
        b.iter_batched(
            || {
                UserCache::new(UserCacheConfig {
                    capacity: Bytes::from_mb(100),
                    freq_window_secs: 600.0,
                    min_freq_sample: 8,
                    page_bytes: 16 * 28_672,
                })
            },
            |mut cache| {
                for i in 0..512u64 {
                    let u = UserId::new(i % 64);
                    cache.record_access(u, i as f64);
                    black_box(cache.admit_if_hotter(u, Bytes::from_mb(2), i as f64));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let plan = ItemPlacementPlan::new(PlacementStrategy::Hrcs, 100_000_000, 16, 0.1, 28_672 * 10);
    c.bench_function("placement_locate", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(9_973);
            black_box(plan.locate(ItemId::new(i % 100_000_000), WorkerId::new(3)))
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("trace_generate_1k_requests", |b| {
        b.iter_batched(
            || TraceGenerator::new(Workload::new(DatasetConfig::books(), 3), 4),
            |mut gen| black_box(gen.generate(10.0, 100.0)),
            BatchSize::SmallInput,
        )
    });
    // Keep SimTime in the public-API surface exercised here too.
    c.bench_function("simtime_advance", |b| {
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t = t.advance(0.001);
            black_box(t)
        })
    });
}

criterion_group!(
    benches,
    bench_forward,
    bench_planner,
    bench_batching,
    bench_workload,
    bench_cache,
    bench_placement,
    bench_trace_generation
);
criterion_main!(benches);
