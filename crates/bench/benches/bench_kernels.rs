//! Kernel microbenchmarks: seed vs blocked/fused implementations.
//!
//! Complements `batctl bench` (which emits the tracked JSON summary) with
//! per-kernel timings under the criterion harness: the seed triple-loop
//! matmul against the cache-blocked rewrite, the explicit-transpose path
//! against `matmul_nt`, dense vs sparse-aware matrix–vector products, and
//! the fused masked-softmax·V attention epilogue against its gather-based
//! equivalent.

use bat_tensor::ops::{fused_masked_softmax_av, stable_softmax_in_place};
use bat_tensor::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::random(rows, cols, 1.0, &mut SmallRng::seed_from_u64(seed))
}

fn bench_matmul(c: &mut Criterion) {
    let a = mat(128, 128, 1);
    let b = mat(128, 128, 2);
    let bt = b.transpose();
    let mut g = c.benchmark_group("matmul_128");
    g.sample_size(20);
    g.bench_function("naive_seed", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul_naive(&b)))
    });
    g.bench_function("blocked", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul(&b)))
    });
    g.bench_function("nt_pretransposed", |bch| {
        bch.iter(|| black_box(black_box(&a).matmul_nt(&bt)))
    });
    g.finish();
}

fn bench_vecmul(c: &mut Criterion) {
    let m = mat(256, 256, 3);
    let x: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut g = c.benchmark_group("vecmul_256");
    g.bench_function("dense_unrolled", |bch| {
        bch.iter(|| black_box(black_box(&m).vecmul(&x)))
    });
    g.bench_function("sparse_aware_seed", |bch| {
        bch.iter(|| black_box(black_box(&m).vecmul_sparse(&x)))
    });
    g.finish();
}

fn bench_attention_epilogue(c: &mut Criterion) {
    // One attention row: 256 keys, head_dim 64, every other key masked.
    let n = 256;
    let d = 64;
    let values = mat(n, d, 5);
    let scores: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos()).collect();
    let allowed: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let scale = 0.125f32;

    let mut g = c.benchmark_group("attention_epilogue");
    g.bench_function("gather_then_softmax_seed", |bch| {
        bch.iter(|| {
            // The seed's shape: gather allowed scores, softmax, then a
            // weighted row accumulation over the gathered positions.
            let mut gathered: Vec<f32> = Vec::with_capacity(n);
            let mut idx: Vec<usize> = Vec::with_capacity(n);
            for (i, (&s, &ok)) in scores.iter().zip(&allowed).enumerate() {
                if ok {
                    gathered.push(s * scale);
                    idx.push(i);
                }
            }
            stable_softmax_in_place(&mut gathered);
            let mut out = vec![0.0f32; d];
            for (w, &i) in gathered.iter().zip(&idx) {
                for (o, v) in out.iter_mut().zip(values.row(i)) {
                    *o += w * v;
                }
            }
            black_box(out)
        })
    });
    g.bench_function("fused", |bch| {
        let mut scratch = vec![0.0f32; n];
        bch.iter(|| {
            scratch.copy_from_slice(&scores);
            let mut out = vec![0.0f32; d];
            fused_masked_softmax_av(&mut scratch, &allowed, scale, &values, &mut out);
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_vecmul,
    bench_attention_epilogue
);
criterion_main!(benches);
