//! End-to-end forward-pass benchmark: seed reference vs batched rewrite.
//!
//! Uses the Qwen2-1.5B-shaped proxy configuration ranking a 100-candidate
//! prompt — the acceptance scenario whose tracked numbers live in
//! `BENCH_KERNELS.json` (regenerate with `batctl bench`). Runs at whatever
//! pool width `BAT_THREADS` selects; the output is bit-identical at every
//! width, so thread count only moves the clock.

use bat_model::prompt::{MaskScheme, PromptLayout};
use bat_model::{GrModel, GrModelConfig, HstuModel, Weights};
use bat_types::PrefixKind;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_forward_proxy(c: &mut Criterion) {
    let candidates = 100u32;
    let cfg = GrModelConfig::qwen2_1_5b_proxy(4 * candidates as usize + 128);
    let model = GrModel::new(Weights::random(cfg.clone(), 11));
    let user: Vec<u32> = (0..48).map(|i| 100 + i as u32).collect();
    let items: Vec<Vec<u32>> = (0..candidates).map(|i| vec![i, 200 + i]).collect();
    let layout = PromptLayout::new(MaskScheme::Bipartite);
    let seq = layout.build(PrefixKind::Item, &user, &items, &[250, 251]);

    let mut g = c.benchmark_group("forward_qwen_proxy_100cand");
    g.sample_size(10);
    g.bench_function("reference_seed", |b| {
        b.iter(|| black_box(model.forward_reference(black_box(&seq), None)))
    });
    g.bench_function("batched", |b| {
        b.iter(|| black_box(model.forward(black_box(&seq), None)))
    });
    // The cached path: item prefix precomputed, only user+instruction run.
    let item_block: usize = items.iter().map(Vec::len).sum();
    let (prefix_seq, rest) = seq.split_at(item_block);
    let prefix_kv = model.compute_kv(&prefix_seq);
    g.bench_function("batched_ip_cached", |b| {
        b.iter(|| black_box(model.forward(black_box(&rest), Some(&prefix_kv))))
    });
    g.finish();

    // HSTU variant at matched heads (its unit has no GQA).
    let hstu_cfg = GrModelConfig {
        query_heads: 2,
        kv_heads: 2,
        ..GrModelConfig::qwen2_1_5b_proxy(4 * candidates as usize + 128)
    };
    let hstu = HstuModel::random(hstu_cfg, 11);
    let mut g = c.benchmark_group("hstu_qwen_proxy_100cand");
    g.sample_size(10);
    g.bench_function("batched", |b| {
        b.iter(|| black_box(hstu.forward(black_box(&seq), None)))
    });
    g.finish();
}

criterion_group!(benches, bench_forward_proxy);
criterion_main!(benches);
