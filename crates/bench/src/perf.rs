//! Tracked wall-clock perf baseline for the execution layer.
//!
//! Measures the reproduction's own kernels — the seed implementations
//! ([`Matrix::matmul_naive`], [`GrModel::forward_reference`]) against the
//! blocked/fused/parallel rewrites ([`Matrix::matmul`],
//! [`GrModel::forward`]) — and checks the determinism contract (parallel
//! runs bit-identical to serial). `batctl bench` prints the summary as JSON
//! and the committed `BENCH_KERNELS.json` at the repo root records the
//! before/after numbers for regression tracking.
//!
//! Methodology: minimum wall-clock time over a fixed number of samples
//! (min is robust to scheduler noise on shared machines), one warmup run
//! per measurement, `std::hint::black_box` around inputs and outputs.

use bat::exec;
use bat_model::prompt::{MaskScheme, PromptLayout, TokenSeq};
use bat_model::{GrModel, GrModelConfig, Weights};
use bat_tensor::Matrix;
use bat_types::PrefixKind;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// A seeded random matrix (unit scale).
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::random(rows, cols, 1.0, &mut SmallRng::seed_from_u64(seed))
}

/// One timed measurement.
#[derive(Debug, Clone, Serialize)]
pub struct BenchResult {
    /// Benchmark id, e.g. `"matmul_blocked"` or `"forward_batched"`.
    pub name: String,
    /// Pool width the measurement ran with.
    pub threads: usize,
    /// Best-of-N wall-clock seconds for one call.
    pub secs: f64,
}

/// Headline before/after ratio.
#[derive(Debug, Clone, Serialize)]
pub struct Speedup {
    /// What is being compared, e.g. `"forward"`.
    pub name: String,
    /// Seed (serial reference) seconds.
    pub before_secs: f64,
    /// Rewritten kernel seconds at the fastest measured width.
    pub after_secs: f64,
    /// `before / after`.
    pub speedup: f64,
}

/// Everything `batctl bench` reports.
#[derive(Debug, Clone, Serialize)]
pub struct PerfSummary {
    /// Hardware parallelism visible to the process.
    pub nproc: usize,
    /// Pool widths measured.
    pub thread_counts: Vec<usize>,
    /// `true` iff every parallel run produced bit-identical results to the
    /// serial run (the execution layer's core contract).
    pub deterministic: bool,
    /// Kernel-level measurements (matmul, fused attention epilogue).
    pub kernels: Vec<BenchResult>,
    /// End-to-end forward-pass measurements (proxy model, ranking prompt).
    pub forward: Vec<BenchResult>,
    /// Before/after headline ratios.
    pub speedups: Vec<Speedup>,
}

/// Best-of-`samples` wall-clock seconds for one call of `f`, after one
/// warmup call.
fn time_best<F: FnMut()>(mut f: F, samples: u32) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The `bench_forward` scenario from the acceptance criteria: the
/// Qwen2-1.5B-shaped proxy ranking a `candidates`-item prompt.
fn forward_scenario(candidates: usize) -> (GrModel, TokenSeq) {
    // Token ids used below: items i and 200+i, user 100.., instr 250/251.
    let cfg = GrModelConfig::qwen2_1_5b_proxy(300 + candidates);
    let model = GrModel::new(Weights::random(cfg, 11));
    let user: Vec<u32> = (0..48).map(|i| 100 + i as u32).collect();
    let items: Vec<Vec<u32>> = (0..candidates as u32).map(|i| vec![i, 200 + i]).collect();
    let seq = PromptLayout::new(MaskScheme::Bipartite).build(
        PrefixKind::Item,
        &user,
        &items,
        &[250, 251],
    );
    (model, seq)
}

/// Checks the determinism contract: matmul and forward at each width in
/// `widths` are bit-identical to the serial run.
fn check_determinism(widths: &[usize]) -> bool {
    let a = random_matrix(64, 48, 3);
    let b = random_matrix(48, 56, 4);
    let (model, seq) = forward_scenario(20);
    exec::set_threads(1);
    let gold_mm = a.matmul(&b);
    let gold_fwd = model.forward(&seq, None);
    let mut ok = true;
    for &w in widths {
        exec::set_threads(w);
        let mm = a.matmul(&b);
        let fwd = model.forward(&seq, None);
        ok &= mm
            .as_slice()
            .iter()
            .zip(gold_mm.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        ok &= fwd
            .logits
            .iter()
            .zip(&gold_fwd.logits)
            .all(|(x, y)| x.to_bits() == y.to_bits());
    }
    ok
}

/// Runs the full suite at each width in `thread_counts`.
///
/// `quick` shrinks problem sizes and sample counts for CI smoke runs; the
/// committed baseline uses the full sizes.
pub fn run(quick: bool, thread_counts: &[usize]) -> PerfSummary {
    let restore = exec::threads();
    let (mm_dim, samples, candidates) = if quick { (64, 3, 20) } else { (128, 5, 100) };

    let a = random_matrix(mm_dim, mm_dim, 1);
    let b = random_matrix(mm_dim, mm_dim, 2);
    let bt = b.transpose();
    let (model, seq) = forward_scenario(candidates);

    let mut kernels = Vec::new();
    let mut forward = Vec::new();

    // Seed kernels are serial by construction: one "before" measurement.
    exec::set_threads(1);
    let naive_secs = time_best(|| drop(black_box(black_box(&a).matmul_naive(&b))), samples);
    kernels.push(BenchResult {
        name: "matmul_naive_seed".into(),
        threads: 1,
        secs: naive_secs,
    });
    let fwd_ref_secs = time_best(
        || drop(black_box(model.forward_reference(black_box(&seq), None))),
        samples,
    );
    forward.push(BenchResult {
        name: "forward_reference_seed".into(),
        threads: 1,
        secs: fwd_ref_secs,
    });

    let mut best_mm = f64::INFINITY;
    let mut best_fwd = f64::INFINITY;
    for &w in thread_counts {
        exec::set_threads(w);
        let mm = time_best(|| drop(black_box(black_box(&a).matmul(&b))), samples);
        kernels.push(BenchResult {
            name: "matmul_blocked".into(),
            threads: w,
            secs: mm,
        });
        best_mm = best_mm.min(mm);
        let nt = time_best(|| drop(black_box(black_box(&a).matmul_nt(&bt))), samples);
        kernels.push(BenchResult {
            name: "matmul_nt_blocked".into(),
            threads: w,
            secs: nt,
        });
        let fwd = time_best(
            || drop(black_box(model.forward(black_box(&seq), None))),
            samples,
        );
        forward.push(BenchResult {
            name: "forward_batched".into(),
            threads: w,
            secs: fwd,
        });
        best_fwd = best_fwd.min(fwd);
    }

    let deterministic = check_determinism(thread_counts);
    exec::set_threads(restore);

    let speedups = vec![
        Speedup {
            name: "matmul".into(),
            before_secs: naive_secs,
            after_secs: best_mm,
            speedup: naive_secs / best_mm,
        },
        Speedup {
            name: "forward".into(),
            before_secs: fwd_ref_secs,
            after_secs: best_fwd,
            speedup: fwd_ref_secs / best_fwd,
        },
    ];

    PerfSummary {
        nproc: std::thread::available_parallelism().map_or(1, |n| n.get()),
        thread_counts: thread_counts.to_vec(),
        deterministic,
        kernels,
        forward,
        speedups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_deterministic_and_faster_than_seed() {
        let summary = run(true, &[1, 2]);
        assert!(summary.deterministic, "parallel runs must be bit-identical");
        assert_eq!(summary.speedups.len(), 2);
        for s in &summary.speedups {
            assert!(s.before_secs > 0.0 && s.after_secs > 0.0);
            // The blocked/fused kernels must not regress below the seed.
            assert!(
                s.speedup > 1.0,
                "{} regressed: {:.2}x vs seed",
                s.name,
                s.speedup
            );
        }
    }

    #[test]
    fn summary_serializes_to_json() {
        let summary = run(true, &[1]);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("\"deterministic\":true"));
        assert!(json.contains("forward_batched"));
    }
}
