//! Tracked wall-clock perf baseline for the execution layer.
//!
//! Measures the reproduction's own kernels — the seed implementations
//! ([`Matrix::matmul_naive`], [`GrModel::forward_reference`]) against the
//! blocked/fused/parallel rewrites ([`Matrix::matmul`],
//! [`GrModel::forward`]) — and checks the determinism contract (parallel
//! runs bit-identical to serial). `batctl bench` prints the summary as JSON
//! and the committed `BENCH_KERNELS.json` at the repo root records the
//! before/after numbers for regression tracking.
//!
//! Methodology: minimum wall-clock time over a fixed number of samples
//! (min is robust to scheduler noise on shared machines), one warmup run
//! per measurement, `std::hint::black_box` around inputs and outputs.

use bat::exec;
use bat_model::prompt::{MaskScheme, PromptLayout, TokenSeq};
use bat_model::{ForwardWorkspace, GrModel, GrModelConfig, KvSegment, Weights};
use bat_sched::{BatchScheduler, BatchingConfig};
use bat_tensor::{
    active_simd_tier, axpy, dot_fast, fast_silu_mul_in_place, stable_softmax_fast_in_place,
    ColBlock, Matrix, QuantKind, QuantizedColBlock, SplitCols,
};
use bat_types::PrefixKind;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// A seeded random matrix (unit scale).
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::random(rows, cols, 1.0, &mut SmallRng::seed_from_u64(seed))
}

/// One timed measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResult {
    /// Benchmark id, e.g. `"matmul_blocked"` or `"forward_batched"`.
    pub name: String,
    /// Pool width the measurement ran with.
    pub threads: usize,
    /// Best-of-N wall-clock seconds for one call.
    pub secs: f64,
}

/// Headline before/after ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Speedup {
    /// What is being compared, e.g. `"forward"`.
    pub name: String,
    /// Seed (serial reference) seconds.
    pub before_secs: f64,
    /// Rewritten kernel seconds at the fastest measured width.
    pub after_secs: f64,
    /// `before / after`.
    pub speedup: f64,
}

/// Everything `batctl bench` reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfSummary {
    /// Hardware parallelism visible to the process.
    pub nproc: usize,
    /// Pool widths measured.
    pub thread_counts: Vec<usize>,
    /// `true` iff every parallel run produced bit-identical results to the
    /// serial run (the execution layer's core contract).
    pub deterministic: bool,
    /// Kernel-level measurements (matmul, fused attention epilogue).
    pub kernels: Vec<BenchResult>,
    /// End-to-end forward-pass measurements (proxy model, ranking prompt).
    pub forward: Vec<BenchResult>,
    /// Before/after headline ratios.
    pub speedups: Vec<Speedup>,
}

/// Best-of-`samples` wall-clock seconds for one call of `f`, after one
/// warmup call.
fn time_best<F: FnMut()>(mut f: F, samples: u32) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The `bench_forward` scenario from the acceptance criteria: the
/// Qwen2-1.5B-shaped proxy ranking a `candidates`-item prompt.
fn forward_scenario(candidates: usize) -> (GrModel, TokenSeq) {
    // Token ids used below: items i and 200+i, user 100.., instr 250/251.
    let cfg = GrModelConfig::qwen2_1_5b_proxy(300 + candidates);
    let model = GrModel::new(Weights::random(cfg, 11));
    let user: Vec<u32> = (0..48).map(|i| 100 + i as u32).collect();
    let items: Vec<Vec<u32>> = (0..candidates as u32).map(|i| vec![i, 200 + i]).collect();
    let seq = PromptLayout::new(MaskScheme::Bipartite).build(
        PrefixKind::Item,
        &user,
        &items,
        &[250, 251],
    );
    (model, seq)
}

/// The prefix-heavy serving scenario: the same proxy model with a long
/// cached user prefix *and* `candidates` cached item blocks, so the
/// computed suffix is just the two instruction tokens — the steady state
/// of a warm Bat worker, where per-request KV data movement (not FLOPs)
/// used to dominate. Returns the model, the cached-head sequence, and the
/// suffix to compute.
fn prefix_heavy_scenario(user_tokens: usize, candidates: usize) -> (GrModel, TokenSeq, TokenSeq) {
    let cfg = GrModelConfig::qwen2_1_5b_proxy(300 + candidates);
    let model = GrModel::new(Weights::random(cfg, 13));
    let user: Vec<u32> = (0..user_tokens).map(|i| 100 + (i % 100) as u32).collect();
    let items: Vec<Vec<u32>> = (0..candidates as u32).map(|i| vec![i, 200 + i]).collect();
    let seq = PromptLayout::new(MaskScheme::Bipartite).build(
        PrefixKind::User,
        &user,
        &items,
        &[250, 251],
    );
    let cached = seq.len() - 2;
    let (head, tail) = seq.split_at(cached);
    (model, head, tail)
}

/// Checks the determinism contract: matmul and forward at each width in
/// `widths` are bit-identical to the serial run.
fn check_determinism(widths: &[usize]) -> bool {
    let a = random_matrix(64, 48, 3);
    let b = random_matrix(48, 56, 4);
    let (model, seq) = forward_scenario(20);
    exec::set_threads(1);
    let gold_mm = a.matmul(&b);
    let gold_fwd = model.forward(&seq, None);
    let mut ok = true;
    for &w in widths {
        exec::set_threads(w);
        let mm = a.matmul(&b);
        let fwd = model.forward(&seq, None);
        ok &= mm
            .as_slice()
            .iter()
            .zip(gold_mm.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        ok &= fwd
            .logits
            .iter()
            .zip(&gold_fwd.logits)
            .all(|(x, y)| x.to_bits() == y.to_bits());
    }
    ok
}

/// Runs the full suite at each width in `thread_counts`.
///
/// `quick` shrinks problem sizes and sample counts for CI smoke runs; the
/// committed baseline uses the full sizes.
pub fn run(quick: bool, thread_counts: &[usize]) -> PerfSummary {
    let restore = exec::threads();
    let (mm_dim, samples, candidates) = if quick { (64, 3, 20) } else { (128, 5, 100) };

    let a = random_matrix(mm_dim, mm_dim, 1);
    let b = random_matrix(mm_dim, mm_dim, 2);
    let bt = b.transpose();
    let (model, seq) = forward_scenario(candidates);

    let mut kernels = Vec::new();
    let mut forward = Vec::new();

    // Seed kernels are serial by construction: one "before" measurement.
    exec::set_threads(1);
    let naive_secs = time_best(|| drop(black_box(black_box(&a).matmul_naive(&b))), samples);
    kernels.push(BenchResult {
        name: "matmul_naive_seed".into(),
        threads: 1,
        secs: naive_secs,
    });
    let fwd_ref_secs = time_best(
        || drop(black_box(model.forward_reference(black_box(&seq), None))),
        samples,
    );
    forward.push(BenchResult {
        name: "forward_reference_seed".into(),
        threads: 1,
        secs: fwd_ref_secs,
    });

    let mut best_mm = f64::INFINITY;
    let mut best_fwd = f64::INFINITY;
    for &w in thread_counts {
        exec::set_threads(w);
        let mm = time_best(|| drop(black_box(black_box(&a).matmul(&b))), samples);
        kernels.push(BenchResult {
            name: "matmul_blocked".into(),
            threads: w,
            secs: mm,
        });
        best_mm = best_mm.min(mm);
        let nt = time_best(|| drop(black_box(black_box(&a).matmul_nt(&bt))), samples);
        kernels.push(BenchResult {
            name: "matmul_nt_blocked".into(),
            threads: w,
            secs: nt,
        });
        let fwd = time_best(
            || drop(black_box(model.forward(black_box(&seq), None))),
            samples,
        );
        forward.push(BenchResult {
            name: "forward_batched".into(),
            threads: w,
            secs: fwd,
        });
        best_fwd = best_fwd.min(fwd);
    }

    // Prefix-heavy scenario: long cached user prefix + cached candidate
    // blocks, two-token suffix. `forward_prefix_repack` is the pre-change
    // data movement (fresh workspace + per-layer repack of the whole
    // prefix); `forward_packed_prefix` is the canonical path (reused
    // workspace, zero-copy splice of the stored packed planes). The calls
    // are sub-millisecond, so they get more samples.
    let (user_tokens, p_candidates) = if quick { (256, 20) } else { (2048, 100) };
    let p_samples = samples * 8;
    let (p_model, p_head, p_tail) = prefix_heavy_scenario(user_tokens, p_candidates);
    exec::set_threads(1);
    let p_kv: KvSegment = p_model.compute_kv(&p_head);
    let repack_secs = time_best(
        || {
            drop(black_box(p_model.forward_prefix_repack_baseline(
                black_box(&p_tail),
                Some(black_box(&p_kv)),
            )));
        },
        p_samples,
    );
    forward.push(BenchResult {
        name: "forward_prefix_repack".into(),
        threads: 1,
        secs: repack_secs,
    });
    let mut best_packed = f64::INFINITY;
    let mut ws = ForwardWorkspace::new();
    for &w in thread_counts {
        exec::set_threads(w);
        let packed = time_best(
            || {
                black_box(p_model.forward_with(
                    black_box(&p_tail),
                    Some(black_box(&p_kv)),
                    &mut ws,
                ));
            },
            p_samples,
        );
        forward.push(BenchResult {
            name: "forward_packed_prefix".into(),
            threads: w,
            secs: packed,
        });
        best_packed = best_packed.min(packed);
    }

    // Cold-tier quantization kernels (serial: per-segment work the tiered
    // pool does on demotion and cold hits). The fused attend reads the
    // quantized planes directly; its baseline materializes an f32 copy
    // first and attends over that — same arithmetic, bit-identical result,
    // extra allocation and memory traffic.
    let (q_rows, q_cols) = if quick { (64, 256) } else { (128, 2048) };
    let q_samples = samples * 8;
    exec::set_threads(1);
    let mut q_block = ColBlock::new(q_rows);
    {
        let mut rng = SmallRng::seed_from_u64(17);
        let col: Vec<f32> = Matrix::random(q_rows, q_cols, 1.0, &mut rng)
            .as_slice()
            .to_vec();
        for j in 0..q_cols {
            let column: Vec<f32> = (0..q_rows).map(|r| col[r * q_cols + j]).collect();
            q_block.push_col(&column);
        }
    }
    let scores: Vec<f32> = (0..q_cols).map(|j| (j as f32 * 0.37).sin()).collect();
    let mut attend_out = vec![0.0f32; q_rows];
    let mut fused_secs = f64::INFINITY;
    for kind in [QuantKind::Int8, QuantKind::F16] {
        let label = match kind {
            QuantKind::Int8 => "int8",
            QuantKind::F16 => "f16",
        };
        let q_secs = time_best(
            || {
                drop(black_box(QuantizedColBlock::quantize(
                    black_box(&q_block),
                    kind,
                )))
            },
            q_samples,
        );
        kernels.push(BenchResult {
            name: format!("quantize_{label}"),
            threads: 1,
            secs: q_secs,
        });
        let q = QuantizedColBlock::quantize(&q_block, kind);
        let dq_secs = time_best(|| drop(black_box(black_box(&q).dequantize())), q_samples);
        kernels.push(BenchResult {
            name: format!("dequantize_{label}"),
            threads: 1,
            secs: dq_secs,
        });
        let fused = time_best(
            || {
                attend_out.iter_mut().for_each(|v| *v = 0.0);
                black_box(&q).rows_dot_acc(0, black_box(&scores), &mut attend_out);
                black_box(&attend_out);
            },
            q_samples,
        );
        kernels.push(BenchResult {
            name: format!("dequant_fused_attend_{label}"),
            threads: 1,
            secs: fused,
        });
        let materialized = time_best(
            || {
                attend_out.iter_mut().for_each(|v| *v = 0.0);
                let full = black_box(&q).dequantize();
                SplitCols::new(None, &full).rows_dot_acc(0, black_box(&scores), &mut attend_out);
                black_box(&attend_out);
            },
            q_samples,
        );
        kernels.push(BenchResult {
            name: format!("dequant_then_attend_{label}"),
            threads: 1,
            secs: materialized,
        });
        if kind == QuantKind::Int8 {
            fused_secs = fused;
        }
    }
    let materialized_int8 = kernels
        .iter()
        .find(|r| r.name == "dequant_then_attend_int8")
        .map(|r| r.secs)
        .unwrap_or(fused_secs);

    // Multiversioned elementwise kernels, labelled with the SIMD tier the
    // dispatchers actually selected on this machine (avx512 / avx2 / neon /
    // scalar) — so the committed baseline records which tier it measured
    // and a tier silently falling back to scalar shows up as a regression.
    // All tiers are bit-identical; only speed differs.
    let tier = active_simd_tier();
    let simd_len = if quick { 1536 } else { 8192 };
    let s_samples = samples * 8;
    exec::set_threads(1);
    {
        let mut rng = SmallRng::seed_from_u64(23);
        let src: Vec<f32> = Matrix::random(1, simd_len, 1.0, &mut rng)
            .as_slice()
            .to_vec();
        let ups: Vec<f32> = Matrix::random(1, simd_len, 1.0, &mut rng)
            .as_slice()
            .to_vec();
        let mut buf = src.clone();
        let softmax_secs = time_best(
            || {
                buf.copy_from_slice(&src);
                stable_softmax_fast_in_place(black_box(&mut buf));
                black_box(&buf);
            },
            s_samples,
        );
        kernels.push(BenchResult {
            name: format!("simd_softmax_{tier}"),
            threads: 1,
            secs: softmax_secs,
        });
        let silu_secs = time_best(
            || {
                buf.copy_from_slice(&src);
                fast_silu_mul_in_place(black_box(&mut buf), black_box(&ups));
                black_box(&buf);
            },
            s_samples,
        );
        kernels.push(BenchResult {
            name: format!("simd_silu_mul_{tier}"),
            threads: 1,
            secs: silu_secs,
        });
        let axpy_secs = time_best(
            || {
                buf.copy_from_slice(&src);
                axpy(black_box(&mut buf), 0.37, black_box(&ups));
                black_box(&buf);
            },
            s_samples,
        );
        kernels.push(BenchResult {
            name: format!("simd_axpy_{tier}"),
            threads: 1,
            secs: axpy_secs,
        });
        let dot_secs = time_best(
            || {
                black_box(dot_fast(black_box(&src), black_box(&ups)));
            },
            s_samples,
        );
        kernels.push(BenchResult {
            name: format!("simd_dot_{tier}"),
            threads: 1,
            secs: dot_secs,
        });
    }

    // Continuous-batching round formation: the slot scheduler's pure
    // control-plane cost of admitting a burst of multi-chunk requests and
    // retiring every round. This is the per-request overhead the batched
    // serve path adds on top of the kernels above.
    let batch_reqs = if quick { 64 } else { 512 };
    let round_secs = time_best(
        || {
            let mut m = BatchScheduler::new(BatchingConfig::default(), 1e-4, vec![1.0; 4]);
            for i in 0..batch_reqs {
                m.admit(i as f64 * 1e-3, i, 1024, 4e-3, None);
                black_box(m.drain_rounds());
            }
            m.finish();
            black_box(m.drain_rounds());
            black_box(m.drain_completions());
        },
        samples,
    );
    kernels.push(BenchResult {
        name: "batch_round_formation".into(),
        threads: 1,
        secs: round_secs,
    });

    let deterministic = check_determinism(thread_counts);
    exec::set_threads(restore);

    let speedups = vec![
        Speedup {
            name: "matmul".into(),
            before_secs: naive_secs,
            after_secs: best_mm,
            speedup: naive_secs / best_mm,
        },
        Speedup {
            name: "forward".into(),
            before_secs: fwd_ref_secs,
            after_secs: best_fwd,
            speedup: fwd_ref_secs / best_fwd,
        },
        Speedup {
            name: "forward_prefix".into(),
            before_secs: repack_secs,
            after_secs: best_packed,
            speedup: repack_secs / best_packed,
        },
        Speedup {
            name: "cold_attend_fused".into(),
            before_secs: materialized_int8,
            after_secs: fused_secs,
            speedup: materialized_int8 / fused_secs,
        },
    ];

    PerfSummary {
        nproc: std::thread::available_parallelism().map_or(1, |n| n.get()),
        thread_counts: thread_counts.to_vec(),
        deterministic,
        kernels,
        forward,
        speedups,
    }
}

/// Sub-millisecond entries jitter more than 25 % run to run on a shared
/// machine, so the gate grants every comparison this much absolute slack
/// on top of the relative tolerance — large enough to ignore scheduler
/// noise on a 100 µs kernel, far too small to hide a real regression on
/// any forward-pass entry.
const GATE_ABS_SLACK_SECS: f64 = 0.0005;

/// Compares a fresh summary against a committed baseline (the parsed
/// `BENCH_KERNELS.json`), returning one line per kernel/forward entry that
/// regressed by more than `tolerance` (fractional, e.g. `0.25` for the CI
/// gate's 25 %, plus [`GATE_ABS_SLACK_SECS`]) — or that the fresh run no
/// longer measures at all, since a silently dropped row would otherwise
/// un-gate itself — or that the baseline is *stale*: a fresh row the
/// baseline has no entry for means a kernel was added or renamed without
/// regenerating `BENCH_KERNELS.json`, so it would never be gated (and the
/// renamed-away baseline row would keep reporting "not measured" forever).
/// Both directions fail the gate; the fix is to re-run with `--out`. Only
/// meaningful when both runs used the same problem sizes (same `quick`
/// flag), the same architecture (SIMD rows are named by detected tier),
/// and overlapping thread widths.
pub fn regressions(fresh: &PerfSummary, baseline: &PerfSummary, tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    let fresh_rows: Vec<&BenchResult> = fresh.kernels.iter().chain(&fresh.forward).collect();
    let base_rows: Vec<&BenchResult> = baseline.kernels.iter().chain(&baseline.forward).collect();
    for base in &base_rows {
        // Skip baseline widths the fresh run was not asked to measure.
        if base.threads != 1 && !fresh.thread_counts.contains(&base.threads) {
            continue;
        }
        match fresh_rows
            .iter()
            .find(|r| r.name == base.name && r.threads == base.threads)
        {
            Some(r) if r.secs > base.secs * (1.0 + tolerance) + GATE_ABS_SLACK_SECS => {
                out.push(format!(
                    "{} @ {} threads: {:.6}s vs baseline {:.6}s (+{:.0}%)",
                    base.name,
                    base.threads,
                    r.secs,
                    base.secs,
                    (r.secs / base.secs - 1.0) * 100.0
                ))
            }
            Some(_) => {}
            None => out.push(format!(
                "{} @ {} threads: present in baseline but not measured",
                base.name, base.threads
            )),
        }
    }
    for r in &fresh_rows {
        // Skip fresh widths the baseline never recorded (a wider --threads
        // run against an older narrow baseline is not staleness).
        if r.threads != 1 && !baseline.thread_counts.contains(&r.threads) {
            continue;
        }
        if !base_rows
            .iter()
            .any(|b| b.name == r.name && b.threads == r.threads)
        {
            out.push(format!(
                "{} @ {} threads: measured but absent from baseline (stale baseline — regenerate with --out)",
                r.name, r.threads
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_deterministic_and_faster_than_seed() {
        let summary = run(true, &[1, 2]);
        assert!(summary.deterministic, "parallel runs must be bit-identical");
        assert_eq!(summary.speedups.len(), 4);
        for s in &summary.speedups {
            assert!(s.before_secs > 0.0 && s.after_secs > 0.0);
            // The blocked/fused kernels must not regress below the seed,
            // and the packed splice must not regress below repacking.
            assert!(
                s.speedup > 1.0,
                "{} regressed: {:.2}x vs seed",
                s.name,
                s.speedup
            );
        }
    }

    #[test]
    fn summary_serializes_to_json() {
        let summary = run(true, &[1]);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("\"deterministic\":true"));
        assert!(json.contains("forward_batched"));
        assert!(json.contains("forward_packed_prefix"));
        let back: PerfSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.forward.len(), summary.forward.len());
    }

    #[test]
    fn regression_gate_flags_slowdowns_and_missing_rows() {
        let row = |name: &str, threads: usize, secs: f64| BenchResult {
            name: name.into(),
            threads,
            secs,
        };
        let baseline = PerfSummary {
            nproc: 1,
            thread_counts: vec![1, 4],
            deterministic: true,
            kernels: vec![row("matmul_blocked", 1, 0.001)],
            forward: vec![
                row("forward_batched", 1, 0.010),
                row("forward_batched", 4, 0.010),
                row("forward_packed_prefix", 1, 0.002),
            ],
            speedups: vec![],
        };
        let mut fresh = baseline.clone();
        assert!(regressions(&fresh, &baseline, 0.25).is_empty());
        // 20% slower passes the 25% gate; 40% slower fails.
        fresh.forward[0].secs = 0.012;
        assert!(regressions(&fresh, &baseline, 0.25).is_empty());
        fresh.forward[0].secs = 0.014;
        assert_eq!(regressions(&fresh, &baseline, 0.25).len(), 1);
        // Sub-millisecond entries get absolute slack against jitter: a
        // 100 µs kernel reading 60% high is noise, not a regression.
        fresh.forward[0].secs = 0.010;
        fresh.kernels[0].secs = 0.0016;
        assert!(regressions(&fresh, &baseline, 0.25).is_empty());
        fresh.kernels[0].secs = 0.0020;
        assert_eq!(regressions(&fresh, &baseline, 0.25).len(), 1);
        fresh.kernels[0].secs = 0.001;
        // Dropping a measured row is flagged, not silently passed.
        fresh.forward[0].secs = 0.010;
        fresh.forward.remove(2);
        assert_eq!(regressions(&fresh, &baseline, 0.25).len(), 1);
        fresh = baseline.clone();
        // A fresh row the baseline has never seen means the baseline is
        // stale (kernel added or renamed without regenerating): flagged.
        fresh.kernels.push(row("simd_softmax_avx512", 1, 0.0001));
        let stale = regressions(&fresh, &baseline, 0.25);
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert!(stale[0].contains("stale baseline"));
        // ...unless it was measured at a width the baseline never ran.
        fresh.kernels.pop();
        fresh.thread_counts = vec![1, 4, 8];
        fresh.forward.push(row("forward_batched", 8, 0.010));
        assert!(regressions(&fresh, &baseline, 0.25).is_empty());
        fresh = baseline.clone();
        // Baseline widths the fresh run didn't measure are skipped.
        fresh.thread_counts = vec![1];
        fresh.forward = vec![row("forward_batched", 1, 0.010)];
        fresh.kernels = vec![row("matmul_blocked", 1, 0.001)];
        let misses = regressions(&fresh, &baseline, 0.25);
        assert_eq!(misses.len(), 1, "{misses:?}");
        assert!(misses[0].contains("forward_packed_prefix"));
    }
}
