//! Figure 4: consistency of user access frequency across time windows.
//!
//! §5.3 validates the predictability assumption behind hotness-aware
//! scheduling: for each user, the similarity of consecutive window
//! frequencies `1 − |f(t) − f(t−δ)| / (f(t) + f(t−δ))` concentrates near 1.
//! We replay an Industry trace, compute the per-user mean similarity over
//! consecutive non-empty windows for W = 5 min and W = 60 min, and print
//! the distribution.

use bat_bench::{f3, print_table, write_artifact, HarnessArgs};
use bat_kvcache::hotness::window_similarity;
use bat_metrics::Cdf;
use bat_types::DatasetConfig;
use bat_types::UserId;
use bat_workload::{SessionParams, TraceGenerator, Workload};

fn similarity_distribution(events: &[(f64, UserId)], window_secs: f64, horizon: f64) -> Vec<f64> {
    // Per-user event times.
    let mut per_user: std::collections::HashMap<UserId, Vec<f64>> =
        std::collections::HashMap::new();
    for &(t, u) in events {
        per_user.entry(u).or_default().push(t);
    }
    // Sliding-window frequencies f_u(t) = |events in [t-W, t)| evaluated on
    // a δ = W/6 grid (the paper's "consecutive sliding-window frequencies"
    // with window interval δ), compared pairwise where at least one window
    // is non-empty.
    let delta = window_secs / 6.0;
    let steps = (horizon / delta).floor() as usize;
    let mut sims = Vec::new();
    for times in per_user.values() {
        if times.len() < 2 {
            continue; // a single access defines no frequency trajectory
        }
        let count_in = |lo: f64, hi: f64| -> f64 {
            let a = times.partition_point(|&t| t < lo);
            let b = times.partition_point(|&t| t < hi);
            (b - a) as f64
        };
        let mut acc = 0.0;
        let mut n = 0usize;
        let mut prev = count_in(-window_secs, 0.0);
        for k in 1..=steps {
            let t = k as f64 * delta;
            let cur = count_in(t - window_secs, t);
            if prev > 0.0 || cur > 0.0 {
                acc += window_similarity(cur, prev);
                n += 1;
            }
            prev = cur;
        }
        if n > 0 {
            sims.push(acc / n as f64);
        }
    }
    sims
}

fn main() {
    let args = HarnessArgs::parse();
    let horizon = args.scale(4.0 * 3600.0, 3600.0);
    let session_rate = args.scale(6.0, 2.0);

    // Session-structured traffic (§5.3's burst model): users issue runs of
    // requests minutes apart, which is what makes consecutive windows
    // similar in the paper's traces.
    let ds = DatasetConfig::industry();
    let mut gen = TraceGenerator::new(Workload::new(ds, 2026), 44);
    let events = gen.generate_session_arrivals(horizon, session_rate, SessionParams::default());
    println!(
        "Figure 4: window-frequency similarity over {} requests, {:.1}h horizon",
        events.len(),
        horizon / 3600.0
    );

    let mut artifact = serde_json::Map::new();
    for (label, w) in [("W = 5 min", 300.0), ("W = 60 min", 3600.0)] {
        let sims = similarity_distribution(&events, w, horizon);
        let cdf = Cdf::from_samples(&sims);
        let mean = sims.iter().sum::<f64>() / sims.len().max(1) as f64;
        println!("\n{label}: {} multi-access users", sims.len());
        print_table(
            &["similarity", "share of users ≥"],
            &[
                vec!["0.9".into(), f3(1.0 - cdf.at(0.9 - 1e-9))],
                vec!["0.7".into(), f3(1.0 - cdf.at(0.7 - 1e-9))],
                vec!["0.5".into(), f3(1.0 - cdf.at(0.5 - 1e-9))],
            ],
        );
        println!("mean similarity: {}", f3(mean));
        artifact.insert(
            label.replace(' ', "").to_lowercase(),
            serde_json::json!({ "mean": mean, "ge_0_5": 1.0 - cdf.at(0.5 - 1e-9) }),
        );
    }
    println!("\n(paper: most users exhibit consistent behavior across consecutive windows,");
    println!(" justifying f_u(now) as a predictor of near-future frequency)");
    write_artifact("fig4_frequency_consistency.json", &artifact);
}
