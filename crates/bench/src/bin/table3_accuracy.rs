//! Table 3: ranking quality of UP vs IP across datasets and models (§6.3).
//!
//! The paper evaluates finetuned LLMs on Amazon datasets; we evaluate the
//! real workspace transformer on planted-preference semantic worlds (see
//! DESIGN.md §2 for the substitution argument). Each (dataset × model)
//! cell of the paper maps to a semantic world with its own seed; the
//! "Books × Qwen2-1.5B" cell uses the order-biased variant to reproduce the
//! paper's one clear IP degradation, and — as in §6.3 — a CacheBlend-style
//! PIC repair pass narrows that gap.
//!
//! Expected shape: UP ≈ IP within a few points in most cells (either may
//! lead), a visible IP drop only in the order-biased cell, PIC recovering
//! most of it.

use bat::experiment::accuracy_rows;
use bat::SemanticConfig;
use bat_bench::{f3, print_table, write_artifact, HarnessArgs};

struct Cell {
    dataset: &'static str,
    model: &'static str,
    seed: u64,
    biased: bool,
}

fn main() {
    let args = HarnessArgs::parse();
    let n_users = args.scale(120, 25);

    // One world per paper cell; seeds differentiate the "datasets", the
    // order-biased flag plays the role of the position-sensitive base model.
    let cells = [
        Cell {
            dataset: "Beauty",
            model: "Qwen2-1.5B",
            seed: 101,
            biased: false,
        },
        Cell {
            dataset: "Beauty",
            model: "Qwen2-7B",
            seed: 102,
            biased: false,
        },
        Cell {
            dataset: "Beauty",
            model: "Llama3-1B",
            seed: 103,
            biased: false,
        },
        Cell {
            dataset: "Games",
            model: "Qwen2-1.5B",
            seed: 201,
            biased: false,
        },
        Cell {
            dataset: "Games",
            model: "Qwen2-7B",
            seed: 202,
            biased: false,
        },
        Cell {
            dataset: "Games",
            model: "Llama3-1B",
            seed: 203,
            biased: false,
        },
        Cell {
            dataset: "Books",
            model: "Qwen2-1.5B",
            seed: 301,
            biased: true,
        },
        Cell {
            dataset: "Books",
            model: "Qwen2-7B",
            seed: 302,
            biased: false,
        },
        Cell {
            dataset: "Books",
            model: "Llama3-1B",
            seed: 303,
            biased: false,
        },
    ];

    println!("Table 3: UP vs IP ranking quality (semantic-world reproduction)");
    println!("({n_users} users/cell, 100 candidates, ground truth among negatives)\n");

    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for cell in &cells {
        let mut cfg = SemanticConfig::table3_world(cell.seed);
        if cell.biased {
            cfg = cfg.order_biased();
        }
        // PIC only for the degraded cell, as in §6.3.
        let pic = cell.biased.then_some(0.15f32);
        let result = accuracy_rows(cfg, n_users, pic);
        for row in &result {
            let m = row.metrics.table3_row();
            let (lo, hi) = row
                .metrics
                .bootstrap_ci(|m| m.recall_at(10), 500, cell.seed);
            rows.push(vec![
                cell.dataset.to_string(),
                format!(
                    "{}{}",
                    cell.model,
                    if cell.biased { " (order-biased)" } else { "" }
                ),
                row.strategy.clone(),
                format!("{} [{},{}]", f3(m[0]), f3(lo), f3(hi)),
                f3(m[1]),
                f3(m[2]),
                f3(m[3]),
                f3(m[4]),
                f3(m[5]),
            ]);
            artifact.push(serde_json::json!({
                "dataset": cell.dataset,
                "model": cell.model,
                "order_biased": cell.biased,
                "strategy": row.strategy,
                "recall@10": m[0], "mrr@10": m[1], "ndcg@10": m[2],
                "recall@5": m[3], "mrr@5": m[4], "ndcg@5": m[5],
            }));
        }
    }
    print_table(
        &[
            "Dataset",
            "Model",
            "Strategy",
            "R@10 [95% CI]",
            "MRR@10",
            "NDCG@10",
            "R@5",
            "MRR@5",
            "NDCG@5",
        ],
        &rows,
    );

    // Shape summary: mean |UP − IP| gap on robust cells vs the biased cell.
    let gap = |d: &str, m_contains: &str| -> f64 {
        let find = |strategy: &str| {
            artifact
                .iter()
                .find(|v| {
                    v["dataset"] == d
                        && v["model"].as_str().unwrap().contains(m_contains)
                        && v["strategy"] == strategy
                })
                .map(|v| v["recall@10"].as_f64().unwrap())
                .unwrap_or(0.0)
        };
        find("UP") - find("IP")
    };
    let robust_gaps: Vec<f64> = [
        ("Beauty", "Qwen2-1.5B"),
        ("Games", "Qwen2-1.5B"),
        ("Books", "Qwen2-7B"),
    ]
    .iter()
    .map(|(d, m)| gap(d, m))
    .collect();
    let biased_gap = gap("Books", "Qwen2-1.5B");
    println!(
        "\nUP−IP Recall@10 gaps: robust cells {:?}, order-biased cell {:.3}",
        robust_gaps
            .iter()
            .map(|g| (g * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        biased_gap
    );
    println!("(paper: IP ≈ UP in most cells; degradation only for position-sensitive models, narrowed by PIC)");

    write_artifact("table3_accuracy.json", &artifact);
}
