//! Table 4: ablation of the three techniques (§6.4).
//!
//! A = Bipartite Attention (without it: User-as-prefix only),
//! B = HRCS placement (without it: replicate the item cache — which OOMs at
//!     the 1M-item scale, where hash sharding is used instead, per the
//!     paper's footnote),
//! C = hotness-aware scheduling (without it: cache-agnostic + LRU).
//!
//! Expected shape (paper, QPS): ABC ≈ AB > AC > A > None on Books-280K
//! (user cache is roomy, C matters little); ABC ≈ AC > AB > A > None on
//! Books-1M (the replicated/hashed item cache squeezes or bypasses memory,
//! B matters).

use bat::experiment::{run_config, saturation_offered_rate, ComparisonSpec};
use bat::{
    AdmissionKind, ClusterConfig, DatasetConfig, EngineConfig, ItemPlacementPlan, ModelConfig,
    PlacementStrategy, PolicyKind, SystemKind,
};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};

/// Builds the no-B placement: Replicate if it fits the node budget, else
/// the paper's hash-sharding fallback. Returns the plan and a note.
fn no_b_placement(
    model: &ModelConfig,
    cluster: &ClusterConfig,
    ds: &DatasetConfig,
) -> (ItemPlacementPlan, &'static str) {
    let item_kv = model.kv_bytes(ds.avg_item_tokens as u64);
    let replicate = ItemPlacementPlan::new(
        PlacementStrategy::Replicate,
        ds.num_items,
        cluster.num_nodes,
        1.0,
        item_kv,
    );
    if replicate.per_worker_bytes() <= cluster.node.kv_cache_capacity {
        (replicate, "replicate")
    } else {
        (
            ItemPlacementPlan::new(
                PlacementStrategy::HashShard,
                ds.num_items,
                cluster.num_nodes,
                0.0,
                item_kv,
            ),
            "replicate OOMs -> hash shard",
        )
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(1200.0, 60.0);
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node();

    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for ds in [DatasetConfig::books(), DatasetConfig::books_x(1_000_000)] {
        let rate = saturation_offered_rate(&model, &cluster, &ds, 3.0);
        let spec = ComparisonSpec {
            model: model.clone(),
            cluster: cluster.clone(),
            dataset: ds.clone(),
            duration_secs: duration,
            offered_rate: rate,
            seed: 4,
        };
        let abc = EngineConfig::for_system(SystemKind::Bat, model.clone(), cluster.clone(), &ds);
        let (nob_plan, nob_note) = no_b_placement(&model, &cluster, &ds);

        let variants: Vec<(String, EngineConfig)> = vec![
            ("ABC".into(), abc.clone()),
            (
                "AB".into(),
                EngineConfig {
                    label: "AB".into(),
                    policy: PolicyKind::CacheAgnostic,
                    admission: AdmissionKind::Lru,
                    ..abc.clone()
                },
            ),
            (
                format!("AC ({nob_note})"),
                EngineConfig {
                    label: "AC".into(),
                    ..abc.clone()
                }
                .with_placement(Some(nob_plan.clone())),
            ),
            (
                format!("A ({nob_note})"),
                EngineConfig {
                    label: "A".into(),
                    policy: PolicyKind::CacheAgnostic,
                    admission: AdmissionKind::Lru,
                    ..abc.clone()
                }
                .with_placement(Some(nob_plan.clone())),
            ),
            (
                "None (UP)".into(),
                EngineConfig::for_system(
                    SystemKind::UserPrefix,
                    model.clone(),
                    cluster.clone(),
                    &ds,
                ),
            ),
        ];
        // Each ablation variant is an independent engine run over the same
        // spec, so the five variants fan out on the bat-exec pool; results
        // come back in variant order, keeping the table layout stable.
        let stats = bat::exec::parallel_map(&variants, 1, |(_, cfg)| {
            run_config(&spec, cfg.clone()).expect("table4 configs validate")
        });
        for ((label, _), stats) in variants.iter().zip(&stats) {
            rows.push(vec![
                ds.name.clone(),
                label.clone(),
                f1(stats.qps()),
                f3(stats.hit_rate()),
            ]);
            artifact.push(serde_json::json!({
                "dataset": ds.name, "variant": label,
                "qps": stats.qps(), "hit_rate": stats.hit_rate(),
            }));
        }
    }
    println!("Table 4: ablation study (throughput in QPS)");
    print_table(&["Dataset", "Variant", "QPS", "HitRate"], &rows);
    println!("\nA = Bipartite Attention, B = HRCS placement, C = hotness-aware scheduling");
    write_artifact("table4_ablation.json", &artifact);
}
