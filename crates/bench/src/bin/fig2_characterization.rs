//! Figure 2: GR serving workload characterization.
//!
//! (a) per-request latency, recomputation vs prefix-cache load, for the
//!     three Table 2 models at 512–8192 input tokens;
//! (b) the user-profile token-count distribution (long tail, ~36 % of users
//!     below the ~1 000-token item block);
//! (c) the hourly user access-frequency CDF (most users ≤ 1–2 accesses);
//! (d) the item access-frequency CDF (~90 % of accesses on the top ~10 %).

use bat_bench::{f3, print_table, write_artifact, HarnessArgs};
use bat_metrics::Cdf;
use bat_sim::ComputeModel;
use bat_types::{DatasetConfig, ModelConfig, NodeConfig, UserId};
use bat_workload::{trace::window_counts, TraceGenerator, Workload};
use std::collections::HashMap;

fn main() {
    let args = HarnessArgs::parse();

    // ---- (a) Recompute vs prefix-cache latency -------------------------
    println!("Figure 2(a): per-request latency (ms), recompute vs prefix load");
    let node = NodeConfig::a100_testbed();
    let lengths = [512u64, 1024, 2048, 4096, 8192];
    let mut rows = Vec::new();
    let mut fig2a = Vec::new();
    for model in ModelConfig::table2_presets() {
        let cm = ComputeModel::new(model.clone(), node.clone());
        for &len in &lengths {
            let recompute_ms = cm.prefill_secs(len, len) * 1e3;
            let prefix_ms = cm.kv_load_secs(cm.kv_bytes(len)) * 1e3;
            rows.push(vec![
                model.name.clone(),
                len.to_string(),
                format!("{recompute_ms:.1}"),
                format!("{prefix_ms:.2}"),
            ]);
            fig2a.push(serde_json::json!({
                "model": model.name, "tokens": len,
                "recompute_ms": recompute_ms, "prefix_ms": prefix_ms,
            }));
        }
    }
    print_table(
        &["Model", "Tokens", "Recompute (ms)", "Prefix load (ms)"],
        &rows,
    );
    println!("(100–200 ms SLO: recomputation exceeds it at long contexts; prefix load does not)");

    // ---- (b,c,d) Industry-trace distributions ---------------------------
    let ds = DatasetConfig::industry();
    let workload = Workload::new(ds.clone(), 2026);

    // (b) user token counts, sampled over the population.
    let n_users = args.scale(200_000u64, 20_000);
    let tokens: Vec<f64> = (0..n_users)
        .map(|i| workload.user_token_count(UserId::new(i * 37 + 5)) as f64)
        .collect();
    let cdf_b = Cdf::from_samples(&tokens);
    println!("\nFigure 2(b): user token count distribution (Industry)");
    let mut rows = Vec::new();
    for q in [0.1, 0.25, 0.36, 0.5, 0.75, 0.9, 0.99, 1.0] {
        rows.push(vec![
            format!("p{:02.0}", q * 100.0),
            format!("{:.0}", cdf_b.inverse(q)),
        ]);
    }
    print_table(&["quantile", "user tokens"], &rows);
    let short_share = cdf_b.at(1000.0);
    println!(
        "share of users with < 1000 tokens (vs ~1K item block): {} (paper: ~36%)",
        f3(short_share)
    );

    // (c,d) replay an hour of Industry traffic, count accesses.
    let duration = args.scale(3600.0, 600.0);
    let rate = args.scale(120.0, 60.0);
    let mut gen = TraceGenerator::new(workload, 7);
    let trace = gen.generate(duration, rate);
    println!(
        "\n(replayed {} requests over {:.0}s)",
        trace.len(),
        duration
    );

    let per_user = window_counts(&trace, duration);
    let user_counts: Vec<f64> = per_user
        .values()
        .map(|v| v.iter().map(|&(_, c)| c as f64).sum::<f64>())
        .collect();
    let cdf_c = Cdf::from_samples(&user_counts);
    let le1 = cdf_c.at(1.0);
    let le2 = cdf_c.at(2.0);
    println!("\nFigure 2(c): user access frequency per hour (active users)");
    print_table(
        &["accesses/hour", "CDF"],
        &[
            vec!["<=1".into(), f3(le1)],
            vec!["<=2".into(), f3(le2)],
            vec!["<=5".into(), f3(cdf_c.at(5.0))],
            vec!["<=10".into(), f3(cdf_c.at(10.0))],
        ],
    );
    println!("(paper: >55% of users access at most once per hour)");

    let mut item_counts: HashMap<u64, u64> = HashMap::new();
    for req in &trace {
        for item in &req.candidates {
            *item_counts.entry(item.as_u64()).or_insert(0) += 1;
        }
    }
    // Access mass of the hottest 10% of *accessed* items, plus the analytic law.
    let mut counts: Vec<u64> = item_counts.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum();
    let head = counts.len() / 10;
    let head_mass = counts[..head].iter().sum::<u64>() as f64 / total as f64;
    let law = gen.workload().item_law();
    println!("\nFigure 2(d): item access frequency CDF");
    let mut rows = Vec::new();
    for frac in [0.01, 0.05, 0.10, 0.25, 0.50] {
        let k = (law.n() as f64 * frac) as u64;
        rows.push(vec![
            format!("top {:.0}%", frac * 100.0),
            f3(law.head_mass(k.max(1))),
        ]);
    }
    print_table(&["items (by rank)", "access mass (analytic)"], &rows);
    println!(
        "empirical: top 10% of accessed items carry {} of accesses (paper: ~90%)",
        f3(head_mass)
    );

    write_artifact(
        "fig2_characterization.json",
        &serde_json::json!({
            "a_latency": fig2a,
            "b_user_tokens": {
                "p50": cdf_b.inverse(0.5), "p99": cdf_b.inverse(0.99),
                "short_share_below_1000": short_share,
            },
            "c_user_freq": { "le1": le1, "le2": le2 },
            "d_item_skew": { "top10pct_mass_empirical": head_mass },
        }),
    );
}
