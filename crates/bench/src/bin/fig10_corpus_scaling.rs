//! Figure 10: throughput and cache hit rate vs item corpus size (§6.6).
//!
//! 16-node H20 production testbed, Industry-X datasets with 1M–100M items,
//! Qwen2-1.5B. At 100M items the item KV cache no longer fits the pooled
//! memory: BAT caches only the hottest ~10 % of items and shifts more
//! requests to User-as-prefix, while the pure IP baseline's hit rate drops
//! harder (more uncached items).

use bat::experiment::{compare_systems, saturation_offered_rate, ComparisonSpec};
use bat::{ClusterConfig, DatasetConfig, ModelConfig, SystemKind};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(90.0, 15.0);
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::h20_16node();
    let corpus_sizes: Vec<u64> = if args.quick {
        vec![1_000_000, 100_000_000]
    } else {
        vec![1_000_000, 10_000_000, 100_000_000]
    };
    let systems = [
        SystemKind::Recompute,
        SystemKind::UserPrefix,
        SystemKind::ItemPrefix,
        SystemKind::Bat,
    ];

    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for &items in &corpus_sizes {
        let ds = DatasetConfig::industry_x(items);
        let rate = saturation_offered_rate(&model, &cluster, &ds, 3.0);
        let spec = ComparisonSpec {
            model: model.clone(),
            cluster: cluster.clone(),
            dataset: ds.clone(),
            duration_secs: duration,
            offered_rate: rate,
            seed: 10,
        };
        let stats = compare_systems(&spec, &systems);
        for s in &stats {
            rows.push(vec![
                ds.name.clone(),
                s.system.clone(),
                f1(s.qps()),
                f3(s.hit_rate()),
                f3(s.up_share()),
            ]);
            artifact.push(serde_json::json!({
                "dataset": ds.name, "items": items, "system": s.system,
                "qps": s.qps(), "hit_rate": s.hit_rate(), "up_share": s.up_share(),
            }));
        }
    }
    println!("Figure 10: corpus-size scaling (16-node H20, Qwen2-1.5B)");
    print_table(&["Dataset", "System", "QPS", "HitRate", "UP share"], &rows);
    println!("\n(paper: BAT stays ahead as the corpus grows; at 100M items it caches the");
    println!(" hottest ~10% of items and schedules more requests User-as-prefix, while");
    println!(" IP's hit rate drops harder)");
    write_artifact("fig10_corpus_scaling.json", &artifact);
}
