//! Development probe: quick look at Fig 5/6-style numbers (not a paper
//! harness; see fig5_6_throughput for the real one).

use bat_sim::{EngineConfig, ServingEngine, SystemKind};
use bat_types::{ClusterConfig, DatasetConfig, ModelConfig};
use bat_workload::{TraceGenerator, Workload};

fn fig7_debug() {
    use bat_placement::{ItemPlacementPlan, PlacementStrategy};
    let model = ModelConfig::qwen2_1_5b();
    let ds = DatasetConfig::books();
    let mut cluster = ClusterConfig::a100_4node();
    cluster.node = cluster.node.with_network_gbps(10.0);
    let item_kv = model.kv_bytes(ds.avg_item_tokens as u64);
    for (label, strat, r) in [
        ("hrcs", PlacementStrategy::Hrcs, 0.346),
        ("repl", PlacementStrategy::Replicate, 1.0),
        ("hash", PlacementStrategy::HashShard, 0.0),
    ] {
        let plan = ItemPlacementPlan::new(strat, ds.num_items, cluster.num_nodes, r, item_kv);
        let cfg = EngineConfig::for_system(SystemKind::Bat, model.clone(), cluster.clone(), &ds)
            .with_placement(Some(plan));
        let user_cap = cfg.user_cache_capacity;
        let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 1), 2);
        let trace = gen.generate(1200.0, 320.0);
        let mut engine = ServingEngine::new(cfg).unwrap();
        let stats = engine.run(&trace);
        let uc = engine.planner().user_cache();
        println!(
            "{label}: user_cap={} used={} cached_users={} up_share={:.3} hit={:.3} qps={:.1}",
            user_cap,
            uc.used(),
            uc.len(),
            stats.up_share(),
            stats.hit_rate(),
            stats.qps()
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--fig7") {
        fig7_debug();
        return;
    }
    let cluster = ClusterConfig::a100_4node();
    let model = ModelConfig::qwen2_1_5b();
    for ds in [
        DatasetConfig::games(),
        DatasetConfig::beauty(),
        DatasetConfig::books(),
        DatasetConfig::industry(),
    ] {
        println!("=== {} ===", ds.name);
        for kind in [
            SystemKind::Recompute,
            SystemKind::UserPrefix,
            SystemKind::ItemPrefix,
            SystemKind::Bat,
        ] {
            let cfg = EngineConfig::for_system(kind, model.clone(), cluster.clone(), &ds);
            let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 1), 2);
            let trace = gen.generate(120.0, 300.0);
            let mut engine = ServingEngine::new(cfg).unwrap();
            let stats = engine.run(&trace);
            println!(
                "{:4}  qps={:7.1} hit={:5.3} savings={:5.3} up_share={:4.2} net/comp={:5.3}",
                stats.system,
                stats.qps(),
                stats.hit_rate(),
                stats.computation_savings(),
                stats.up_share(),
                stats.net_over_compute()
            );
        }
    }
}
