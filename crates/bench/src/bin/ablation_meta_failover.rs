//! Meta-failover ablation: the replicated cache-meta service under leader
//! loss and control-plane partitions.
//!
//! Three runs over the same trace: fault-free, leader killed a third of
//! the way in (respawning halfway), and leader crash plus a cut fabric
//! link between the client's worker and a peer. The headline claim is
//! that the meta tier is *bitwise invisible* to serving — every request
//! completes and a pure meta-replica crash leaves the final RunStats
//! matching the fault-free run exactly — while the consensus trail
//! (elections, epochs, fenced appends, snapshot catch-up) shows the
//! failover actually happened. The fabric cut is different: the data
//! plane also respects the partition (DESIGN §5c), so the third run
//! still completes everything but detours warm remote-KV pulls to
//! recompute while the link is down (`unreachable_kv_fallbacks`).

use bat::meta::MetaGroup;
use bat::{
    ClusterConfig, DatasetConfig, EngineConfig, FaultEvent, FaultKind, FaultReport, FaultSchedule,
    ModelConfig, RunStats, ServingEngine, SystemKind, WorkerId,
};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};
use bat_workload::{TraceGenerator, Workload};

const NODES: usize = 2;

fn serving_only(stats: &RunStats) -> RunStats {
    let mut s = stats.clone();
    s.faults = FaultReport::default();
    s
}

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(120.0, 12.0);
    let rate = args.scale(80.0, 60.0);
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node().with_nodes(NODES);
    let ds = DatasetConfig::games();

    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 7), 9);
    let trace = gen.generate(duration, rate);

    let base = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds);
    let replicas = base.meta_replicas;
    let leader = MetaGroup::new(replicas, base.meta_seed)
        .ensure_leader()
        .expect("fresh group elects");
    let crash_at = duration / 3.0;
    let restart_at = duration / 2.0;
    println!(
        "{} requests over {duration:.0}s on {NODES} workers, {replicas}-replica meta group; \
         leader is replica {leader}",
        trace.len()
    );

    let crash = FaultSchedule::single_meta_crash(NODES, replicas, leader, crash_at, restart_at)
        .expect("leader crash keeps a quorum");
    let mut crash_and_cut_events = crash.events().to_vec();
    crash_and_cut_events.push(FaultEvent {
        at_secs: duration * 0.6,
        kind: FaultKind::CutLink {
            a: WorkerId::new(0),
            b: WorkerId::new(1),
        },
    });
    crash_and_cut_events.push(FaultEvent {
        at_secs: duration * 0.8,
        kind: FaultKind::HealLink {
            a: WorkerId::new(0),
            b: WorkerId::new(1),
        },
    });
    let crash_and_cut = FaultSchedule::with_meta_nodes(NODES, replicas, crash_and_cut_events)
        .expect("crash + partition schedule validates");

    let runs: Vec<(&str, RunStats)> = [
        ("fault-free", None),
        ("leader crash", Some(crash)),
        ("crash + partition", Some(crash_and_cut)),
    ]
    .into_iter()
    .map(|(label, schedule)| {
        // Keep the same label across runs: `RunStats.system` is part of the
        // bitwise comparison.
        let cfg = base.clone().with_faults(schedule);
        let stats = ServingEngine::new(cfg).expect("config valid").run(&trace);
        (label, stats)
    })
    .collect();
    let baseline = serving_only(&runs[0].1);

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(label, s)| {
            let r = &s.faults;
            vec![
                (*label).to_owned(),
                format!("{}/{}", s.completed, trace.len()),
                f3(s.hit_rate()),
                f1(s.p99_latency_ms),
                r.meta_elections.to_string(),
                r.meta_final_epoch.to_string(),
                r.meta_fenced_appends.to_string(),
                r.meta_snapshot_installs.to_string(),
                r.meta_unreachable_leader_elections.to_string(),
                r.unreachable_kv_fallbacks.to_string(),
                if serving_only(s) == baseline {
                    "yes".to_owned()
                } else if r.link_partitions > 0 {
                    // Expected: the data plane detoured around the cut link.
                    "no (cut)".to_owned()
                } else {
                    "NO".to_owned()
                },
            ]
        })
        .collect();
    println!();
    print_table(
        &[
            "Run", "Done", "Hit", "P99", "Elect", "Epoch", "Fenced", "Snap", "Forced", "Detour",
            "Bitwise",
        ],
        &rows,
    );

    let all_complete = runs.iter().all(|(_, s)| s.completed == trace.len());
    // Pure meta faults must be bitwise-invisible; runs with a fabric cut
    // are exempt — their data plane legitimately detours around the link.
    let crash_bitwise = runs
        .iter()
        .filter(|(_, s)| s.faults.link_partitions == 0)
        .all(|(_, s)| serving_only(s) == baseline);
    let cut_detours = runs
        .iter()
        .filter(|(_, s)| s.faults.link_partitions > 0)
        .all(|(_, s)| s.faults.unreachable_kv_fallbacks >= 1);
    let epochs_advance = runs[1..]
        .iter()
        .all(|(_, s)| s.faults.meta_final_epoch > 1 && s.faults.meta_elections >= 2);
    println!(
        "\nall runs complete every request: {} | meta-crash serving bitwise-identical: {} | \
         partitioned run detours warm pulls: {} | failovers re-elected at higher epochs: {}",
        if all_complete { "yes" } else { "NO" },
        if crash_bitwise { "yes" } else { "NO" },
        if cut_detours { "yes" } else { "NO" },
        if epochs_advance { "yes" } else { "NO" },
    );

    write_artifact(
        "ablation_meta_failover.json",
        &serde_json::json!({
            "duration_secs": duration,
            "requests": trace.len(),
            "meta_replicas": replicas,
            "initial_leader": leader,
            "crash_at": crash_at,
            "restart_at": restart_at,
            "runs": runs
                .iter()
                .map(|(label, s)| {
                    serde_json::json!({
                        "label": label,
                        "completed": s.completed,
                        "hit_rate": s.hit_rate(),
                        "p99_latency_ms": s.p99_latency_ms,
                        "fault_report": &s.faults,
                        "bitwise_identical": serving_only(s) == baseline,
                    })
                })
                .collect::<Vec<_>>(),
            "all_complete": all_complete,
            "meta_crash_bitwise_identical": crash_bitwise,
            "partitioned_run_detours": cut_detours,
            "epochs_advance": epochs_advance,
        }),
    );
}
