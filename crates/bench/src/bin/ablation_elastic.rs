//! Elastic-membership ablation: the goodput story behind fault-tolerant
//! continuous batching.
//!
//! One trace, two membership histories. The *static* run keeps all four
//! workers for the whole trace; the *elastic* run drains worker 1 a
//! quarter of the way in (planned scale-in: its in-flight round finishes,
//! seated chunks migrate), SIGKILLs worker 2 mid-batch (unplanned: seated
//! chunks requeue through the crash path), restarts it, and finally joins
//! worker 1 back (planned scale-out: re-planned into the slot map
//! mid-run). The gate: elastic goodput must hold ≥ 80% of static, the
//! extended conservation law (`submitted == completed + shed + rejected`,
//! with `migrated` a pure movement ledger) must balance on both runs, and
//! the threaded serve runtime — child OS processes over Unix sockets, so
//! the kill is a real SIGKILL severing a socket mid-frame — must land the
//! simulator's exact digest. Exits nonzero on any violation.

use bat::{
    BatchingConfig, ClusterConfig, DatasetConfig, EngineConfig, FaultEvent, FaultKind,
    FaultSchedule, ModelConfig, OverloadConfig, ServeOptions, ServeRuntime, ServingEngine,
    SloBudget, SystemKind, TransportKind, WorkerId,
};
use bat_bench::{f3, print_table, write_artifact, HarnessArgs};
use bat_workload::{TraceGenerator, Workload};

fn main() {
    // `--processes` children re-execute this binary; divert them into the
    // worker loop before anything else touches the process.
    bat::maybe_child_worker();
    let args = HarnessArgs::parse();
    let duration = args.scale(40.0, 8.0);
    let rate = args.scale(700.0, 700.0);
    let nodes = 4;
    let ds = DatasetConfig {
        num_users: 300,
        avg_user_tokens: 120,
        avg_item_tokens: 8,
        candidates_per_request: 10,
        ..DatasetConfig::games()
    };

    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 7), 9);
    gen.set_slo(SloBudget::with_deadline(0.15));
    let trace = gen.generate(duration, rate);

    // Planned scale-in, an unplanned mid-batch kill, the recovery, and a
    // planned scale-out — the full membership alphabet on one timeline.
    let ev = |at_secs, kind| FaultEvent { at_secs, kind };
    let schedule = FaultSchedule::new(
        nodes,
        vec![
            ev(duration * 0.25, FaultKind::WorkerDrain(WorkerId::new(1))),
            ev(duration * 0.40, FaultKind::WorkerCrash(WorkerId::new(2))),
            ev(duration * 0.60, FaultKind::WorkerRestart(WorkerId::new(2))),
            ev(duration * 0.70, FaultKind::WorkerJoin(WorkerId::new(1))),
        ],
    )
    .expect("membership schedule validates");

    let base = EngineConfig::for_system(
        SystemKind::Bat,
        ModelConfig::qwen2_1_5b(),
        ClusterConfig::a100_4node().with_nodes(nodes),
        &ds,
    )
    .with_batching(Some(BatchingConfig::default()))
    .with_slo(Some(OverloadConfig::default()));
    let static_cfg = base.clone();
    let elastic_cfg = base.with_faults(Some(schedule.clone()));

    println!(
        "{} on {nodes} nodes, {} requests over {duration:.0}s at {rate:.0} qps, deadline 0.15s",
        ds.name,
        trace.len()
    );
    for e in schedule.events() {
        println!("  t={:6.1}s  {:?}", e.at_secs, e.kind);
    }

    let stat = ServingEngine::new(static_cfg)
        .expect("config valid")
        .run(&trace);
    let sim = ServingEngine::new(elastic_cfg.clone())
        .expect("config valid")
        .run(&trace);
    // The physical run: real child processes, real SIGKILL mid-batch.
    let opts = ServeOptions {
        transport: TransportKind::Uds,
        processes: true,
        child_args: Vec::new(),
        ..ServeOptions::default()
    };
    let elastic = ServeRuntime::new(elastic_cfg, opts)
        .expect("options valid")
        .serve(&trace);
    let e = &elastic.slo;
    let s = &stat.slo;
    let b = &elastic.batching;

    let rows = vec![
        vec![
            "submitted".to_owned(),
            e.submitted.to_string(),
            s.submitted.to_string(),
        ],
        vec![
            "completed".to_owned(),
            e.completed.to_string(),
            s.completed.to_string(),
        ],
        vec![
            "shed after admission".to_owned(),
            e.shed_expired.to_string(),
            s.shed_expired.to_string(),
        ],
        vec![
            "rejected".to_owned(),
            (e.submitted - e.accepted).to_string(),
            (s.submitted - s.accepted).to_string(),
        ],
        vec![
            "deadline misses".to_owned(),
            e.deadline_misses.to_string(),
            s.deadline_misses.to_string(),
        ],
        vec![
            "migrated (movement, not outcome)".to_owned(),
            e.migrated.to_string(),
            s.migrated.to_string(),
        ],
        vec![
            "goodput ratio".to_owned(),
            f3(e.goodput_ratio()),
            f3(s.goodput_ratio()),
        ],
    ];
    println!();
    print_table(&["Metric", "elastic", "static"], &rows);

    let mech = vec![
        vec!["drains".to_owned(), b.drains.to_string()],
        vec!["joins".to_owned(), b.joins.to_string()],
        vec![
            "migrated requests".to_owned(),
            b.migrated_requests.to_string(),
        ],
        vec!["migrated tokens".to_owned(), b.migrated_tokens.to_string()],
        vec!["rounds".to_owned(), b.rounds.to_string()],
    ];
    println!("\nMembership mechanisms (elastic run):");
    print_table(&["Mechanism", "count"], &mech);

    let ratio = if s.goodput() == 0 {
        1.0
    } else {
        e.goodput() as f64 / s.goodput() as f64
    };
    let digest_ok = sim.digest() == elastic.digest();
    println!(
        "\nconservation: elastic {} / static {} | digest vs simulator: {} | goodput vs static: {}",
        if e.conserved() { "yes" } else { "VIOLATED" },
        if s.conserved() { "yes" } else { "VIOLATED" },
        if digest_ok { "MATCH" } else { "MISMATCH" },
        f3(ratio),
    );

    write_artifact(
        "ablation_elastic.json",
        &serde_json::json!({
            "duration_secs": duration,
            "requests": trace.len(),
            "schedule": schedule.events(),
            "static_slo": s,
            "elastic_slo": e,
            "elastic_batching": b,
            "goodput_ratio_vs_static": ratio,
            "digest_matches_simulator": digest_ok,
        }),
    );

    assert!(
        e.conserved() && s.conserved(),
        "conservation law violated: submitted != completed + shed + rejected"
    );
    assert!(
        digest_ok,
        "serve digest diverged from the simulator under membership churn"
    );
    assert!(
        b.drains >= 1 && b.joins >= 1,
        "the drain/join must register"
    );
    assert!(
        ratio >= 0.80,
        "elastic goodput {ratio:.3} fell below 80% of the static run"
    );
    println!("\nelastic goodput held >= 80% of static membership: yes");
}
