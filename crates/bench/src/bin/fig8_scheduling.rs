//! Figure 8: impact of hotness-aware prompt scheduling (§6.4).
//!
//! Books dataset, Qwen2-1.5B. The item cache is fixed (the BAT default);
//! the user-cache capacity sweeps 25–100 GB. BAT's hotness-aware scheduling
//! is compared with the cache-agnostic baseline (longer-block-wins + LRU
//! admission).
//!
//! Expected shape (paper): with a small user cache the cache-agnostic
//! baseline schedules long-profile users to UP, thrashing the cache with
//! compulsory and capacity misses, so throughput and hit rate fall well
//! below BAT; the gap narrows as the user cache grows.

use bat::experiment::{run_config, saturation_offered_rate, ComparisonSpec};
use bat::{
    AdmissionKind, Bytes, ClusterConfig, DatasetConfig, EngineConfig, ModelConfig, PolicyKind,
    SystemKind,
};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(1200.0, 60.0);
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node();
    let ds = DatasetConfig::books();
    let rate = saturation_offered_rate(&model, &cluster, &ds, 3.0);
    let spec = ComparisonSpec {
        model: model.clone(),
        cluster: cluster.clone(),
        dataset: ds.clone(),
        duration_secs: duration,
        offered_rate: rate,
        seed: 8,
    };

    let base = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds);
    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for user_gb in [25u64, 50, 75, 100] {
        for (label, policy, admission) in [
            (
                "hotness-aware (BAT)",
                PolicyKind::HotnessAware,
                AdmissionKind::HotnessAware,
            ),
            (
                "cache-agnostic",
                PolicyKind::CacheAgnostic,
                AdmissionKind::Lru,
            ),
        ] {
            let cfg = EngineConfig {
                label: label.to_owned(),
                policy,
                admission,
                ..base.clone()
            }
            .with_user_cache_capacity(Bytes::from_gb(user_gb));
            let stats = run_config(&spec, cfg).expect("config valid");
            rows.push(vec![
                format!("{user_gb} GB"),
                label.to_owned(),
                f1(stats.qps()),
                f3(stats.hit_rate()),
                f3(stats.up_share()),
            ]);
            artifact.push(serde_json::json!({
                "user_cache_gb": user_gb, "scheduler": label,
                "qps": stats.qps(), "hit_rate": stats.hit_rate(),
                "up_share": stats.up_share(),
            }));
        }
    }
    println!("Figure 8: hotness-aware vs cache-agnostic scheduling (Books, Qwen2-1.5B)");
    print_table(
        &["User cache", "Scheduler", "QPS", "HitRate", "UP share"],
        &rows,
    );
    write_artifact("fig8_scheduling.json", &artifact);
}
