//! Tables 1 & 2: dataset statistics and model architectures.
//!
//! These tables are configuration, not measurement — the harness prints the
//! presets and asserts the derived quantities the paper quotes in prose
//! (per-token KV bytes, the 29 MB single-user footprint, the 287 GB / 2.9 PB
//! corpus footprints of §3.3/§4.3).

use bat_bench::{print_table, write_artifact};
use bat_types::{DatasetConfig, ModelConfig};

fn main() {
    println!("Table 1: Detailed Information of Datasets");
    let datasets = DatasetConfig::table1_presets();
    let rows: Vec<Vec<String>> = datasets
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                d.num_users.to_string(),
                d.num_items.to_string(),
                d.avg_user_tokens.to_string(),
                d.avg_item_tokens.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "Dataset",
            "User Num.",
            "Item Num.",
            "Avg User Tok.",
            "Avg Item Tok.",
        ],
        &rows,
    );

    println!("\nTable 2: Model Architecture");
    let models = ModelConfig::table2_presets();
    let rows: Vec<Vec<String>> = models
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                m.kv_heads.to_string(),
                m.head_dim.to_string(),
                m.layers.to_string(),
                format!("{} Bytes", m.kv_bytes_per_token()),
            ]
        })
        .collect();
    print_table(
        &["Model", "KV Heads", "Head Dim", "Layers", "KV/token"],
        &rows,
    );

    // Prose cross-checks (§3.3.2 / §4.3).
    let qwen = ModelConfig::qwen2_1_5b();
    let user_mb = qwen.kv_bytes(1000) as f64 / 1e6;
    let corpus_1m_gb = qwen.kv_bytes(10) as f64 * 1e6 / 1e9;
    let users_100m_pb = qwen.kv_bytes(1000) as f64 * 1e8 / 1e15;
    println!("\nDerived quantities quoted in the paper:");
    println!("  1000-token user prefix (Qwen2-1.5B): {user_mb:.1} MB   (paper: ~29 MB)");
    println!("  1M-item corpus @10 tok/item:        {corpus_1m_gb:.0} GB  (paper: ~287 GB)");
    println!("  1e8 user prefixes @1000 tok:        {users_100m_pb:.1} PB  (paper: ~2.9 PB)");
    assert!((28.0..30.0).contains(&user_mb));
    assert!((280.0..295.0).contains(&corpus_1m_gb));
    assert!((2.8..3.0).contains(&users_100m_pb));

    write_artifact(
        "tables_config.json",
        &serde_json::json!({
            "table1": datasets,
            "table2": models,
            "derived": {
                "user_prefix_mb": user_mb,
                "item_corpus_1m_gb": corpus_1m_gb,
                "users_100m_pb": users_100m_pb,
            }
        }),
    );
}
