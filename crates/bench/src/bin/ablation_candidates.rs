//! Candidate-set-size ablation: toward generative *retrieval* (§7).
//!
//! The paper's future-work claim: "we believe our Bipartite Attention will
//! save more computation for larger candidate item sets" — retrieval-stage
//! candidate sets run to 10K items rather than ranking's ~100. This harness
//! sweeps the candidate count and reports how the computation savings of
//! IP/BAT grow with it, while UP's shrink (the user block becomes a smaller
//! share of the prompt).

use bat::experiment::{compare_systems, saturation_offered_rate, ComparisonSpec};
use bat::{ClusterConfig, DatasetConfig, ModelConfig, SystemKind};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(120.0, 20.0);
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node();
    let counts: &[u32] = if args.quick {
        &[100, 1000]
    } else {
        &[100, 500, 1000, 5000, 10000]
    };
    let systems = [
        SystemKind::UserPrefix,
        SystemKind::ItemPrefix,
        SystemKind::Bat,
    ];

    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for &c in counts {
        let mut ds = DatasetConfig::industry();
        ds.candidates_per_request = c;
        // Retrieval-scale prompts exceed the ranking 8K cap by design.
        ds.max_prompt_tokens = ds.max_prompt_tokens.max(c * ds.avg_item_tokens + 9000);
        let rate = saturation_offered_rate(&model, &cluster, &ds, 3.0);
        let spec = ComparisonSpec {
            model: model.clone(),
            cluster: cluster.clone(),
            dataset: ds,
            duration_secs: duration,
            offered_rate: rate.max(0.5),
            seed: 31,
        };
        let stats = compare_systems(&spec, &systems);
        for s in &stats {
            rows.push(vec![
                c.to_string(),
                s.system.clone(),
                f1(s.qps()),
                f3(s.hit_rate()),
                f3(s.computation_savings()),
            ]);
            artifact.push(serde_json::json!({
                "candidates": c, "system": s.system, "qps": s.qps(),
                "hit_rate": s.hit_rate(), "savings": s.computation_savings(),
            }));
        }
    }
    println!("Candidate-set-size sweep (Industry, Qwen2-1.5B)");
    print_table(
        &["Candidates", "System", "QPS", "HitRate", "Savings"],
        &rows,
    );
    println!("\n(paper §7: item-prefix reuse should dominate as candidate sets grow");
    println!(" toward retrieval scale — UP savings shrink, IP/BAT savings grow)");
    write_artifact("ablation_candidates.json", &artifact);
}
