//! Tiered-cache exploration (the §3.3.2 footnote's future work).
//!
//! Replays an Industry trace's user accesses against a DRAM-only LRU cache
//! and against DRAM + cold tiers of growing capacity, at two cold-tier
//! bandwidths (NVMe-class ~6 GB/s, remote-memory-class ~1.5 GB/s). For each
//! configuration it reports the user-prefix hit split and the estimated
//! per-request time for the UP serving path (prefill of the non-reused
//! tokens + tier load), i.e. whether the extra capacity pays for its
//! latency.
//!
//! This is a cache-level analysis (the serving engine models a single
//! DRAM tier, faithful to the paper); the conclusion it supports is the
//! paper's own: cold tiers enlarge reuse but the latency trade needs care.

use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};
use bat_kvcache::{TierHit, TieredConfig, TieredUserCache};
use bat_sim::ComputeModel;
use bat_types::{Bytes, ClusterConfig, DatasetConfig, ModelConfig};
use bat_workload::{TraceGenerator, Workload};

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(1200.0, 120.0);
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node();
    let compute = ComputeModel::new(model.clone(), cluster.node.clone());
    let ds = DatasetConfig::industry();
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 13), 14);
    let trace = gen.generate(duration, 120.0);
    println!(
        "Tiered user cache on {} Industry requests (DRAM fixed at 150 GB)",
        trace.len()
    );

    let dram = Bytes::from_gb(150);
    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for (cold_gb, cold_bw) in [
        (0u64, 0.0f64),
        (600, 6e9),
        (2000, 6e9),
        (600, 1.5e9),
        (2000, 1.5e9),
    ] {
        let mut cache = TieredUserCache::new(TieredConfig {
            dram_capacity: dram,
            cold_capacity: Bytes::from_gb(cold_gb),
        });
        let (mut dram_hits, mut cold_hits, mut misses) = (0u64, 0u64, 0u64);
        let mut total_secs = 0.0f64;
        for req in &trace {
            let total = req.total_tokens() as u64;
            let user_tokens = req.user_tokens as u64;
            let user_bytes = compute.kv_bytes(user_tokens);
            match cache.lookup(req.user) {
                Some((bytes, TierHit::Dram)) => {
                    dram_hits += 1;
                    total_secs += compute.prefill_secs(total - user_tokens, total)
                        + compute.kv_load_secs(bytes);
                }
                Some((bytes, TierHit::Cold)) => {
                    cold_hits += 1;
                    total_secs +=
                        compute.prefill_secs(total - user_tokens, total) + bytes / cold_bw;
                }
                None => {
                    misses += 1;
                    total_secs += compute.prefill_secs(total, total);
                    cache.admit(req.user, user_bytes);
                }
            }
        }
        let n = trace.len() as f64;
        let label = if cold_gb == 0 {
            "DRAM only".to_owned()
        } else {
            format!("+{cold_gb} GB cold @ {:.1} GB/s", cold_bw / 1e9)
        };
        rows.push(vec![
            label.clone(),
            f3(dram_hits as f64 / n),
            f3(cold_hits as f64 / n),
            f3(misses as f64 / n),
            f1(total_secs / n * 1e3),
        ]);
        artifact.push(serde_json::json!({
            "cold_gb": cold_gb, "cold_bandwidth": cold_bw,
            "dram_hit": dram_hits as f64 / n, "cold_hit": cold_hits as f64 / n,
            "miss": misses as f64 / n, "mean_request_ms": total_secs / n * 1e3,
        }));
    }
    print_table(
        &[
            "Configuration",
            "DRAM hit",
            "Cold hit",
            "Miss",
            "Mean req (ms)",
        ],
        &rows,
    );
    println!("\n(cold capacity converts misses into slow hits; whether mean request time");
    println!(" improves depends on the tier bandwidth — the paper's deferred trade-off)");
    write_artifact("ablation_tiered_cache.json", &artifact);
}
