//! Figure 9: P99 end-to-end latency vs request rate (§6.5).
//!
//! Industry dataset, Qwen2-1.5B, 4-node testbed, systems RE / UP / BAT.
//! Latency stays near the service floor until the saturation knee, then
//! grows steeply. Given the paper's 200 ms P99 SLO, BAT sustains ~1.47×
//! the rate of UP and ~1.57× the rate of RE.

use bat::experiment::{compare_systems, saturation_offered_rate, ComparisonSpec};
use bat::{ClusterConfig, DatasetConfig, ModelConfig, SystemKind};
use bat_bench::{f1, print_table, write_artifact, HarnessArgs};

const SLO_MS: f64 = 200.0;

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(60.0, 15.0);
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node();
    let ds = DatasetConfig::industry();
    let systems = [
        SystemKind::Recompute,
        SystemKind::UserPrefix,
        SystemKind::Bat,
    ];

    // Sweep offered rates from well below RE capacity to beyond BAT's.
    let re_capacity = saturation_offered_rate(&model, &cluster, &ds, 1.0);
    let fracs = [
        0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05, 1.1, 1.15, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0,
    ];

    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    let mut max_rate_under_slo = [0.0f64; 3];
    for &frac in &fracs {
        let rate = re_capacity * frac;
        let spec = ComparisonSpec {
            model: model.clone(),
            cluster: cluster.clone(),
            dataset: ds.clone(),
            duration_secs: duration,
            offered_rate: rate,
            seed: 9,
        };
        let stats = compare_systems(&spec, &systems);
        let mut row = vec![f1(rate)];
        for (i, s) in stats.iter().enumerate() {
            row.push(f1(s.p99_latency_ms));
            if s.p99_latency_ms <= SLO_MS {
                max_rate_under_slo[i] = max_rate_under_slo[i].max(rate);
            }
            artifact.push(serde_json::json!({
                "system": s.system, "offered_rate": rate,
                "p99_ms": s.p99_latency_ms, "p50_ms": s.p50_latency_ms,
                "qps": s.qps(),
            }));
        }
        rows.push(row);
    }
    println!("Figure 9: P99 latency (ms) vs offered request rate (Industry, Qwen2-1.5B)");
    print_table(&["Rate (req/s)", "RE P99", "UP P99", "BAT P99"], &rows);

    let (re, up, bat) = (
        max_rate_under_slo[0],
        max_rate_under_slo[1],
        max_rate_under_slo[2],
    );
    println!("\nMax sustained rate under {SLO_MS:.0}ms P99 SLO:");
    println!("  RE  {re:.1} req/s");
    println!("  UP  {up:.1} req/s");
    println!(
        "  BAT {bat:.1} req/s  ({:.2}x UP, {:.2}x RE; paper: 1.47x / 1.57x)",
        bat / up.max(1e-9),
        bat / re.max(1e-9)
    );
    write_artifact(
        "fig9_latency.json",
        &serde_json::json!({ "points": artifact, "slo_ms": SLO_MS,
            "max_rate_re": re, "max_rate_up": up, "max_rate_bat": bat }),
    );
}
