//! Tiered KV pool ablation: flat cache vs quantized cold tier at an
//! equal hot-tier budget, across cold formats and split policies.
//!
//! Every configuration replays the same trace through the serving engine
//! with the same hot (DRAM) budget; tiered rows add a cold tier of fixed
//! byte capacity. Rows report the end-to-end hit rate (reused / total
//! tokens, the paper's §6.2 metric), the cold-tier ledger, and goodput.
//! The run asserts the three claims the tier subsystem makes:
//!
//! 1. a quantized cold tier raises the end-to-end hit rate at a fixed
//!    hot budget over the flat cache (misses become slow cold hits);
//! 2. quantization pays: int8 fits ~4x the entries of f32 in the same
//!    cold bytes, so its hit rate is at least f32's;
//! 3. the adaptive user/item partition beats both a static 50/50 split
//!    and an all-user split on the same budget.
//!
//! `--quick` shrinks the trace for CI; the assertions hold at both
//! scales because they compare configurations on one trace rather than
//! chasing absolute numbers.

use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};
use bat_placement::{ItemPlacementPlan, PlacementStrategy};
use bat_sim::{
    ColdFormat, EngineConfig, RunStats, ServingEngine, SplitPolicy, SystemKind, TiersConfig,
};
use bat_types::{Bytes, ClusterConfig, DatasetConfig, ModelConfig};
use bat_workload::{TraceGenerator, Workload};

fn run(
    base: &EngineConfig,
    tiers: Option<TiersConfig>,
    trace: &[bat_types::RankRequest],
) -> RunStats {
    let cfg = base.clone().with_tiers(tiers);
    ServingEngine::new(cfg).expect("engine config").run(trace)
}

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(120.0, 20.0);
    let rate = args.scale(80.0, 40.0);
    // More users than the hot tier can hold, so admission churn feeds the
    // demotion/write-back pipeline; enough items that a capped placement
    // plan leaves a long tail uncached for the cold tier's item half.
    let ds = DatasetConfig {
        num_users: 4000,
        ..DatasetConfig::games()
    };
    let model = ModelConfig::qwen2_1_5b();
    let mut cluster = ClusterConfig::a100_4node().with_nodes(2);
    cluster.node.kv_cache_capacity = Bytes::from_gb(20);
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
    let trace = gen.generate(duration, rate);

    // Item region capped at ~1500 slots per worker: the ~5000-item tail
    // stays uncached, giving the cold tier's item half real demand.
    let avg_item_kv = model.kv_bytes(ds.avg_item_tokens as u64);
    let plan = ItemPlacementPlan::new(PlacementStrategy::Hrcs, ds.num_items, 2, 0.2, avg_item_kv)
        .fit_to_capacity(Bytes::new(avg_item_kv * 1500));
    // The fixed hot budget every row shares: deliberately starved (a few
    // ~36 MB Games user prefixes) so the cold tier has misses to convert.
    let hot = Bytes::from_mb(200);
    let cold = Bytes::from_mb(400);
    let base = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds)
        .with_placement(Some(plan))
        .with_user_cache_capacity(hot);

    println!(
        "Tiered KV pool on {} Games requests (hot {} MB fixed, cold {} MB)",
        trace.len(),
        hot.as_u64() / 1_000_000,
        cold.as_u64() / 1_000_000,
    );

    let tiers = |format: ColdFormat, split: SplitPolicy| {
        Some(TiersConfig::new(cold).with_format(format).with_split(split))
    };
    let configs: Vec<(&str, Option<TiersConfig>)> = vec![
        ("flat (no cold tier)", None),
        (
            "cold f32  adaptive",
            tiers(ColdFormat::F32, SplitPolicy::Adaptive),
        ),
        (
            "cold f16  adaptive",
            tiers(ColdFormat::F16, SplitPolicy::Adaptive),
        ),
        (
            "cold int8 adaptive",
            tiers(ColdFormat::Int8, SplitPolicy::Adaptive),
        ),
        (
            "cold int8 static 50/50",
            tiers(ColdFormat::Int8, SplitPolicy::Static(0.5)),
        ),
        (
            "cold int8 all-user",
            tiers(ColdFormat::Int8, SplitPolicy::AllUser),
        ),
    ];

    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    let mut stats = Vec::new();
    for (label, cfg) in &configs {
        let s = run(&base, cfg.clone(), &trace);
        rows.push(vec![
            (*label).to_owned(),
            f3(s.hit_rate()),
            s.tiers.cold_hits.to_string(),
            s.tiers.demotions.to_string(),
            f3(s.tiers.user_budget_bytes as f64 / cold.as_u64().max(1) as f64),
            f1(s.qps()),
            f1(s.p99_latency_ms),
        ]);
        artifact.push(serde_json::json!({
            "config": label,
            "hit_rate": s.hit_rate(),
            "qps": s.qps(),
            "p99_latency_ms": s.p99_latency_ms,
            "tiers": s.tiers,
        }));
        stats.push(s);
    }
    print_table(
        &[
            "Configuration",
            "Hit rate",
            "Cold hits",
            "Demotions",
            "User share",
            "Goodput",
            "p99 (ms)",
        ],
        &rows,
    );

    let flat = &stats[0];
    let f32_row = &stats[1];
    let int8 = &stats[3];
    let static_split = &stats[4];
    let all_user = &stats[5];
    assert!(
        int8.hit_rate() > flat.hit_rate(),
        "quantized cold tier must raise the hit rate at a fixed hot budget: {} vs {}",
        int8.hit_rate(),
        flat.hit_rate()
    );
    assert!(
        int8.hit_rate() >= f32_row.hit_rate(),
        "int8 fits 4x the entries per cold byte; its hit rate must not trail f32: {} vs {}",
        int8.hit_rate(),
        f32_row.hit_rate()
    );
    assert!(
        int8.hit_rate() > static_split.hit_rate(),
        "adaptive split must beat static 50/50: {} vs {}",
        int8.hit_rate(),
        static_split.hit_rate()
    );
    assert!(
        int8.hit_rate() > all_user.hit_rate(),
        "adaptive split must beat all-user: {} vs {}",
        int8.hit_rate(),
        all_user.hit_rate()
    );
    println!(
        "\nall tier-ablation claims hold: tiered > flat, int8 >= f32, adaptive > static/all-user"
    );
    write_artifact("ablation_tiers.json", &artifact);
}
