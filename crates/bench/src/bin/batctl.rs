//! `batctl` — command-line front-end for the BAT reproduction.
//!
//! ```text
//! batctl compare  --dataset books --model qwen2-1.5b --nodes 4 \
//!                 --duration 60 --rate 150 [--systems re,up,ip,bat]
//! batctl accuracy [--seed 7] [--users 40] [--biased] [--pic 0.15]
//! batctl plan     --dataset industry [--gbps 100] [--nodes 4]
//! batctl trace    --dataset games --duration 30 --rate 50 --out trace.jsonl
//! batctl info     --trace trace.jsonl
//! batctl breakdown --dataset industry --duration 30 --rate 80
//! batctl faults   --dataset games --duration 60 --rate 120 \
//!                 [--crash 1 --at 20 --down 10 | --crashes 2 --seed 1]
//! batctl overload --dataset books --duration 10 --rate 300 \
//!                 [--burst 3 --deadline 1.0 --slow 150 --straggle 5]
//! batctl meta     --dataset games --duration 30 --rate 60 \
//!                 [--replicas 3 --at 10 --down 5]
//! batctl net      --dataset games --duration 10 --rate 60 \
//!                 [--transport channel|uds|tcp] [--processes] [--scale 1e-3]
//! batctl bench    [--quick] [--threads 4] [--out BENCH_KERNELS.json] [--check BENCH_KERNELS.json]
//! batctl tiers    --dataset games --duration 20 --rate 40 \
//!                 [--hot-mb 200 --cold-mb 400] [--format f32|f16|int8] \
//!                 [--split adaptive|static:0.5|all-user]
//! batctl drain    --worker 1 [--at 6] --dataset games --duration 20 \
//!                 --rate 60 --nodes 2 [--processes] [--scale 1e-3]
//! batctl join     --worker 1 [--leave 5 --at 10] --dataset games \
//!                 --duration 20 --rate 60 --nodes 2 [--processes]
//! ```
//!
//! The global `--threads N` flag sizes the `bat-exec` worker pool for any
//! command (results are bit-identical at every width by construction).
//!
//! Everything is offline and deterministic; see `README.md` for the
//! figure-regeneration harnesses.

use bat::experiment::{accuracy_rows, compare_systems, ComparisonSpec};
use bat::{
    BatchingConfig, Bytes, ClusterConfig, ColdFormat, ComputeModel, DatasetConfig, EngineConfig,
    FaultEvent, FaultKind, FaultSchedule, ItemPlacementPlan, ModelConfig, OverloadConfig,
    PlacementStrategy, PrefixKind, Priority, SemanticConfig, ServeOptions, ServeRuntime,
    ServingEngine, SloBudget, SplitPolicy, SystemKind, TiersConfig, TraceGenerator, TransportKind,
    WorkerId, Workload, ZipfLaw,
};
use bat_bench::{f1, f3, print_table};
use bat_placement::{compute_replication_ratio, HrcsParams};
use bat_sim::breakdown_by_prefix;
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".to_owned());
            let consumed = if value == "true" && args.get(i + 1).is_none_or(|v| v.starts_with("--"))
            {
                1
            } else {
                2
            };
            map.insert(key.to_owned(), value);
            i += consumed;
        } else {
            i += 1;
        }
    }
    map
}

fn dataset(name: &str) -> Result<DatasetConfig, String> {
    match name.to_lowercase().as_str() {
        "games" => Ok(DatasetConfig::games()),
        "beauty" => Ok(DatasetConfig::beauty()),
        "books" => Ok(DatasetConfig::books()),
        "industry" => Ok(DatasetConfig::industry()),
        other => {
            if let Some(items) = other.strip_prefix("industry-") {
                let n = parse_count(items)?;
                return Ok(DatasetConfig::industry_x(n));
            }
            if let Some(items) = other.strip_prefix("books-") {
                let n = parse_count(items)?;
                return Ok(DatasetConfig::books_x(n));
            }
            Err(format!(
                "unknown dataset '{other}' (games|beauty|books|industry[-N])"
            ))
        }
    }
}

fn parse_count(s: &str) -> Result<u64, String> {
    let (num, mult) = match s.to_lowercase() {
        ref x if x.ends_with('m') => (x[..x.len() - 1].to_owned(), 1_000_000),
        ref x if x.ends_with('k') => (x[..x.len() - 1].to_owned(), 1_000),
        x => (x, 1),
    };
    num.parse::<u64>()
        .map(|n| n * mult)
        .map_err(|e| format!("bad count '{s}': {e}"))
}

fn model(name: &str) -> Result<ModelConfig, String> {
    match name.to_lowercase().as_str() {
        "qwen2-1.5b" | "qwen" => Ok(ModelConfig::qwen2_1_5b()),
        "qwen2-7b" => Ok(ModelConfig::qwen2_7b()),
        "llama3-1b" | "llama" => Ok(ModelConfig::llama3_1b()),
        other => Err(format!(
            "unknown model '{other}' (qwen2-1.5b|qwen2-7b|llama3-1b)"
        )),
    }
}

fn flag_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad --{key}: {e}")),
    }
}

fn flag_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad --{key}: {e}")),
    }
}

fn cmd_compare(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("games", String::as_str))?;
    let model = model(flags.get("model").map_or("qwen2-1.5b", String::as_str))?;
    let nodes = flag_usize(flags, "nodes", 4)?;
    let duration = flag_f64(flags, "duration", 60.0)?;
    let rate = flag_f64(flags, "rate", 100.0)?;
    let seed = flag_f64(flags, "seed", 1.0)? as u64;
    let systems: Vec<SystemKind> = flags
        .get("systems")
        .map_or("re,up,ip,bat", String::as_str)
        .split(',')
        .map(|s| match s.trim().to_lowercase().as_str() {
            "re" => Ok(SystemKind::Recompute),
            "up" => Ok(SystemKind::UserPrefix),
            "ip" => Ok(SystemKind::ItemPrefix),
            "bat" => Ok(SystemKind::Bat),
            other => Err(format!("unknown system '{other}'")),
        })
        .collect::<Result<_, _>>()?;

    let spec = ComparisonSpec {
        model,
        cluster: ClusterConfig::a100_4node().with_nodes(nodes),
        dataset: ds.clone(),
        duration_secs: duration,
        offered_rate: rate,
        seed,
    };
    let stats = compare_systems(&spec, &systems);
    println!(
        "{} on {} nodes, {duration:.0}s at {rate:.0} req/s:",
        ds.name, nodes
    );
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.system.clone(),
                f1(s.qps()),
                f3(s.hit_rate()),
                f3(s.computation_savings()),
                f1(s.p99_latency_ms),
            ]
        })
        .collect();
    print_table(&["System", "QPS", "HitRate", "Savings", "P99 (ms)"], &rows);
    Ok(())
}

fn cmd_accuracy(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed = flag_f64(flags, "seed", 7.0)? as u64;
    let users = flag_usize(flags, "users", 40)?;
    let mut cfg = SemanticConfig::table3_world(seed);
    if flags.contains_key("biased") {
        cfg = cfg.order_biased();
    }
    let pic = match flags.get("pic") {
        None => None,
        Some(v) => Some(v.parse::<f32>().map_err(|e| format!("bad --pic: {e}"))?),
    };
    let rows = accuracy_rows(cfg, users, pic);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let m = r.metrics.table3_row();
            vec![r.strategy.clone(), f3(m[0]), f3(m[1]), f3(m[2]), f3(m[3])]
        })
        .collect();
    print_table(&["Strategy", "R@10", "MRR@10", "NDCG@10", "R@5"], &table);
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("industry", String::as_str))?;
    let nodes = flag_usize(flags, "nodes", 4)?;
    let gbps = flag_f64(flags, "gbps", 100.0)?;
    let model = model(flags.get("model").map_or("qwen2-1.5b", String::as_str))?;
    let mut cluster = ClusterConfig::a100_4node().with_nodes(nodes);
    cluster.node = cluster.node.with_network_gbps(gbps);
    let compute = ComputeModel::new(model.clone(), cluster.node.clone());
    let law = ZipfLaw::new(ds.num_items, ds.item_zipf_exponent);
    let params = HrcsParams {
        bandwidth_tokens_per_sec: compute.net_tokens_per_sec(),
        prefill_time_secs: compute.prefill_estimate_secs(
            ds.avg_user_tokens as u64,
            ds.avg_prompt_item_tokens() as u64,
        ),
        alpha: cluster.alpha,
        candidates_per_request: ds.candidates_per_request,
        avg_item_tokens: ds.avg_item_tokens as f64,
        num_workers: nodes,
    };
    let r = compute_replication_ratio(&params, &law);
    let plan = ItemPlacementPlan::new(
        PlacementStrategy::Hrcs,
        ds.num_items,
        nodes,
        r,
        model.kv_bytes(ds.avg_item_tokens as u64),
    )
    .fit_to_capacity(bat::Bytes::new(
        cluster.node.kv_cache_capacity.as_u64() * 4 / 5,
    ));
    println!(
        "HRCS plan for {} on {nodes} nodes at {gbps:.0}Gbps:",
        ds.name
    );
    println!("  max remote ratio R  {:.4}", params.max_remote_ratio());
    println!("  replication ratio r {:.4}", plan.replication_ratio());
    println!("  replicated items    {}", plan.replicated_items());
    println!(
        "  cached items        {} / {}",
        plan.cached_items(),
        plan.num_items()
    );
    println!("  item region / node  {}", plan.per_worker_bytes());
    Ok(())
}

fn cmd_trace(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("games", String::as_str))?;
    let duration = flag_f64(flags, "duration", 30.0)?;
    let rate = flag_f64(flags, "rate", 50.0)?;
    let seed = flag_f64(flags, "seed", 1.0)? as u64;
    let out = flags.get("out").ok_or("missing --out FILE")?;
    let mut gen = TraceGenerator::new(Workload::new(ds, seed), seed ^ 0xbadc0ffe);
    let trace = gen.generate(duration, rate);
    bat_workload::save_trace(out, &trace).map_err(|e| e.to_string())?;
    println!("wrote {} requests to {out}", trace.len());
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags.get("trace").ok_or("missing --trace FILE")?;
    let trace = bat_workload::load_trace(path).map_err(|e| e.to_string())?;
    let users: std::collections::HashSet<_> = trace.iter().map(|r| r.user).collect();
    let tokens: u64 = trace.iter().map(|r| r.total_tokens() as u64).sum();
    let span = trace
        .last()
        .zip(trace.first())
        .map_or(0.0, |(l, f)| l.arrival - f.arrival);
    println!("{path}: {} requests over {span:.1}s", trace.len());
    println!("  distinct users: {}", users.len());
    println!("  total tokens:   {tokens}");
    Ok(())
}

fn cmd_breakdown(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("industry", String::as_str))?;
    let duration = flag_f64(flags, "duration", 30.0)?;
    let rate = flag_f64(flags, "rate", 80.0)?;
    let model = model(flags.get("model").map_or("qwen2-1.5b", String::as_str))?;
    let cluster = ClusterConfig::a100_4node();
    let mut cfg = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds);
    cfg.record_requests = true;
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 1), 2);
    let trace = gen.generate(duration, rate);
    let mut engine = ServingEngine::new(cfg).map_err(|e| e.to_string())?;
    let stats = engine.run(&trace);
    let records = engine.take_records();
    println!(
        "{}: {} requests, overall hit rate {:.3}",
        ds.name,
        stats.completed,
        stats.hit_rate()
    );
    let rows: Vec<Vec<String>> = breakdown_by_prefix(&records)
        .into_iter()
        .map(|(kind, n, reuse, p99)| {
            vec![
                match kind {
                    PrefixKind::User => "User-as-prefix".to_owned(),
                    PrefixKind::Item => "Item-as-prefix".to_owned(),
                },
                n.to_string(),
                f3(reuse),
                f1(p99),
            ]
        })
        .collect();
    print_table(&["Prefix", "Requests", "Mean reuse", "P99 (ms)"], &rows);
    Ok(())
}

fn cmd_faults(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("games", String::as_str))?;
    let duration = flag_f64(flags, "duration", 60.0)?;
    let rate = flag_f64(flags, "rate", 120.0)?;
    let seed = flag_f64(flags, "seed", 1.0)? as u64;
    let nodes = flag_usize(flags, "nodes", 4)?;
    let model = model(flags.get("model").map_or("qwen2-1.5b", String::as_str))?;
    let cluster = ClusterConfig::a100_4node().with_nodes(nodes);

    // Either the canonical kill-one-worker schedule (--crash W [--down S])
    // or a seeded random one (--crashes N).
    let schedule = if let Some(w) = flags.get("crash") {
        let w: usize = w.parse().map_err(|e| format!("bad --crash: {e}"))?;
        let crash_at = flag_f64(flags, "at", duration / 3.0)?;
        let down = flag_f64(flags, "down", duration / 6.0)?;
        FaultSchedule::single_crash(nodes, WorkerId::new(w as u64), crash_at, crash_at + down)
            .map_err(|e| e.to_string())?
    } else {
        let crashes = flag_usize(flags, "crashes", 2)?;
        FaultSchedule::random(seed, nodes, duration, crashes)
    };

    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), seed), seed ^ 0xbadc0ffe);
    let trace = gen.generate(duration, rate);
    let cfg = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds)
        .with_faults(Some(schedule.clone()));
    let mut engine = ServingEngine::new(cfg).map_err(|e| e.to_string())?;
    let stats = engine.run(&trace);
    let r = &stats.faults;

    println!(
        "{} on {nodes} nodes, {} requests over {duration:.0}s under {} fault events:",
        ds.name,
        trace.len(),
        schedule.events().len()
    );
    for e in schedule.events() {
        println!("  t={:6.1}s  {:?}", e.at_secs, e.kind);
    }
    println!(
        "\ncompleted {}/{} (faults never drop requests)",
        stats.completed,
        trace.len()
    );
    let rows = vec![
        vec!["hit rate (whole run)".to_owned(), f3(stats.hit_rate())],
        vec![
            "pre-fault steady hit rate".to_owned(),
            f3(r.pre_fault_hit_rate),
        ],
        vec![
            "min hit rate after fault".to_owned(),
            f3(r.min_hit_rate_after_fault),
        ],
        vec!["hit-rate dip".to_owned(), f3(r.hit_rate_dip)],
        vec!["time to recover (s)".to_owned(), f1(r.time_to_recover_secs)],
        vec![
            "entries invalidated".to_owned(),
            r.invalidated_entries.to_string(),
        ],
        vec![
            "replica hits during outage".to_owned(),
            r.replica_hits_during_outage.to_string(),
        ],
        vec![
            "recompute fallbacks".to_owned(),
            r.recompute_fallbacks.to_string(),
        ],
        vec![
            "stall-forced recomputes".to_owned(),
            r.stall_forced_recomputes.to_string(),
        ],
        vec![
            "items re-warmed on restart".to_owned(),
            r.rewarmed_items.to_string(),
        ],
    ];
    print_table(&["Degradation / recovery", "Value"], &rows);
    if r.time_to_recover_secs < 0.0 && r.crashes > 0 {
        println!("\n(hit rate had not recovered to steady state by end of trace)");
    }
    Ok(())
}

fn cmd_overload(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("books", String::as_str))?;
    let segment = flag_f64(flags, "duration", 10.0)?;
    let rate = flag_f64(flags, "rate", 300.0)?;
    let burst = flag_f64(flags, "burst", 3.0)?;
    let deadline = flag_f64(flags, "deadline", 1.0)?;
    let slow = flag_f64(flags, "slow", 150.0)?;
    let straggle = flag_f64(flags, "straggle", 5.0)?;
    let seed = flag_f64(flags, "seed", 7.0)? as u64;
    let nodes = flag_usize(flags, "nodes", 4)?;
    let model = model(flags.get("model").map_or("qwen2-1.5b", String::as_str))?;
    let cluster = ClusterConfig::a100_4node().with_nodes(nodes);
    if nodes < 2 {
        return Err("overload needs at least 2 nodes (the slow link has two ends)".into());
    }

    // Steady / burst / recovery segments on one resumable timeline; the
    // burst is best-effort (Priority::Low) so the brownout ladder has a
    // class to shed first.
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), seed), seed ^ 0xbadc0ffe);
    gen.set_slo(SloBudget::with_deadline(deadline).at_priority(Priority::Normal));
    let mut trace = gen.generate(segment, rate);
    gen.set_slo(SloBudget::with_deadline(deadline).at_priority(Priority::Low));
    trace.extend(gen.generate(segment, burst * rate));
    gen.set_slo(SloBudget::with_deadline(deadline).at_priority(Priority::Normal));
    trace.extend(gen.generate(segment, rate));

    // The compound fault: worker 1 straggles and sits behind a near-outage
    // link for the burst plus half the recovery; worker 0 crashes early in
    // recovery and rejoins cold, so hot replicated pulls must hedge.
    let slow_link = |at_secs, factor| FaultEvent {
        at_secs,
        kind: FaultKind::SlowLink {
            a: WorkerId::new(0),
            b: WorkerId::new(1),
            factor,
        },
    };
    let schedule = FaultSchedule::new(
        nodes,
        vec![
            slow_link(segment, slow),
            FaultEvent {
                at_secs: 2.05 * segment,
                kind: FaultKind::WorkerCrash(WorkerId::new(0)),
            },
            FaultEvent {
                at_secs: 2.1 * segment,
                kind: FaultKind::WorkerRestart(WorkerId::new(0)),
            },
            slow_link(2.5 * segment, 1.0),
        ],
    )
    .map_err(|e| e.to_string())?;

    let base = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds)
        .with_slo(Some(OverloadConfig::default()));
    let faulted_cfg = base
        .clone()
        .with_straggler(Some((1, straggle)))
        .with_faults(Some(schedule));
    let healthy = ServingEngine::new(base)
        .map_err(|e| e.to_string())?
        .run(&trace);
    let faulted = ServingEngine::new(faulted_cfg)
        .map_err(|e| e.to_string())?
        .run(&trace);
    let s = &faulted.slo;
    let h = &healthy.slo;
    let r = &faulted.faults;

    println!(
        "{} on {nodes} nodes: {} requests over {:.0}s, {burst:.0}x burst in [{segment:.0}s, {:.0}s), deadline {deadline}s",
        ds.name,
        trace.len(),
        3.0 * segment,
        2.0 * segment,
    );
    println!(
        "faults: worker 1 straggles {straggle}x, link 0\u{2013}1 at {slow}x through [{segment:.0}s, {:.0}s), worker 0 crash/rejoin at {:.0}s/{:.0}s",
        2.5 * segment,
        2.05 * segment,
        2.1 * segment,
    );
    let count_rows: [(&str, u64, u64); 8] = [
        ("submitted", s.submitted, h.submitted),
        ("accepted", s.accepted, h.accepted),
        (
            "rejected: queue full",
            s.rejected_queue_full,
            h.rejected_queue_full,
        ),
        (
            "rejected: deadline infeasible",
            s.rejected_infeasible,
            h.rejected_infeasible,
        ),
        (
            "rejected: brownout shed",
            s.rejected_brownout,
            h.rejected_brownout,
        ),
        (
            "shed after admission (expired)",
            s.shed_expired,
            h.shed_expired,
        ),
        ("completed", s.completed, h.completed),
        ("deadline misses", s.deadline_misses, h.deadline_misses),
    ];
    let mut rows: Vec<Vec<String>> = count_rows
        .iter()
        .map(|(name, f, n)| vec![(*name).to_owned(), f.to_string(), n.to_string()])
        .collect();
    rows.push(vec![
        "goodput ratio".to_owned(),
        f3(s.goodput_ratio()),
        f3(h.goodput_ratio()),
    ]);
    rows.push(vec![
        "P90 latency (ms)".to_owned(),
        f1(faulted.p90_latency_ms),
        f1(healthy.p90_latency_ms),
    ]);
    print_table(&["Metric", "faulted", "no fault"], &rows);

    let mech = vec![
        vec![
            "max brownout rung".to_owned(),
            r.max_brownout_rung.to_string(),
        ],
        vec![
            "rung transitions".to_owned(),
            r.brownout_transitions.to_string(),
        ],
        vec![
            "suspended refreshes (rung 1)".to_owned(),
            r.suspended_refreshes.to_string(),
        ],
        vec![
            "brownout recomputes (rung 2)".to_owned(),
            r.brownout_recomputes.to_string(),
        ],
        vec!["hedged pulls".to_owned(), r.hedged_pulls.to_string()],
        vec!["hedge wins".to_owned(), r.hedge_wins.to_string()],
        vec!["backoff retries".to_owned(), r.backoff_retries.to_string()],
    ];
    println!("\nControl-plane mechanisms (faulted run):");
    print_table(&["Mechanism", "count"], &mech);

    let ratio = if h.goodput() == 0 {
        1.0
    } else {
        s.goodput() as f64 / h.goodput() as f64
    };
    println!(
        "\nconservation: faulted {} / no-fault {} | goodput vs no-fault: {}",
        if s.conserved() { "yes" } else { "VIOLATED" },
        if h.conserved() { "yes" } else { "VIOLATED" },
        f3(ratio),
    );
    if !(s.conserved() && h.conserved()) {
        return Err("conservation law violated".into());
    }
    Ok(())
}

fn cmd_meta(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("games", String::as_str))?;
    let duration = flag_f64(flags, "duration", 30.0)?;
    let rate = flag_f64(flags, "rate", 60.0)?;
    let seed = flag_f64(flags, "seed", 1.0)? as u64;
    let nodes = flag_usize(flags, "nodes", 2)?;
    let model = model(flags.get("model").map_or("qwen2-1.5b", String::as_str))?;
    let cluster = ClusterConfig::a100_4node().with_nodes(nodes);

    let cfg = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds);
    let replicas = flag_usize(flags, "replicas", cfg.meta_replicas)?;
    let crash_at = flag_f64(flags, "at", duration / 3.0)?;
    let down = flag_f64(flags, "down", duration / 6.0)?;
    let mut cfg = cfg;
    cfg.meta_replicas = replicas;

    // Probe the seeded group to learn which replica wins the first election,
    // then schedule its crash — the worst case for the meta service.
    let leader = bat::meta::MetaGroup::new(cfg.meta_replicas, cfg.meta_seed)
        .ensure_leader()
        .map_err(|e| format!("meta group cannot elect: {e}"))?;
    let schedule =
        FaultSchedule::single_meta_crash(nodes, replicas, leader, crash_at, crash_at + down)
            .map_err(|e| e.to_string())?;

    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), seed), seed ^ 0xbadc0ffe);
    let trace = gen.generate(duration, rate);
    let baseline = ServingEngine::new(cfg.clone())
        .map_err(|e| e.to_string())?
        .run(&trace);
    let faulted = ServingEngine::new(cfg.with_faults(Some(schedule)))
        .map_err(|e| e.to_string())?
        .run(&trace);
    let r = &faulted.faults;

    println!(
        "{} on {nodes} nodes, {replicas}-replica meta group, {} requests over {duration:.0}s:",
        ds.name,
        trace.len()
    );
    println!(
        "leader (replica {leader}) killed at t={crash_at:.1}s, respawned at t={:.1}s",
        crash_at + down
    );
    println!(
        "\ncompleted {}/{} (meta failover never drops requests)",
        faulted.completed,
        trace.len()
    );
    let rows = vec![
        vec!["meta crashes".to_owned(), r.meta_crashes.to_string()],
        vec!["meta restarts".to_owned(), r.meta_restarts.to_string()],
        vec!["elections".to_owned(), r.meta_elections.to_string()],
        vec!["final epoch".to_owned(), r.meta_final_epoch.to_string()],
        vec![
            "fenced appends".to_owned(),
            r.meta_fenced_appends.to_string(),
        ],
        vec![
            "snapshot installs".to_owned(),
            r.meta_snapshot_installs.to_string(),
        ],
        vec![
            "client-forced elections".to_owned(),
            r.meta_unreachable_leader_elections.to_string(),
        ],
    ];
    print_table(&["Meta replication", "Value"], &rows);

    let mut zeroed = faulted.clone();
    zeroed.faults = bat::FaultReport::default();
    let mut base = baseline;
    base.faults = bat::FaultReport::default();
    if zeroed == base {
        println!("\nserving stats bitwise-identical to the fault-free run: yes");
        Ok(())
    } else {
        Err("serving stats diverged from the fault-free run".into())
    }
}

fn cmd_bench(flags: &HashMap<String, String>) -> Result<(), String> {
    let quick = flags.contains_key("quick");
    // Measure at 1 thread and at --threads (default 4): the summary then
    // records both the serial rewrite and the scaled pool.
    let top = flag_usize(flags, "threads", 4)?.max(1);
    let widths = if top == 1 { vec![1] } else { vec![1, top] };
    let summary = bat_bench::perf::run(quick, &widths);
    let json =
        serde_json::to_string_pretty(&summary).map_err(|e| format!("serialize summary: {e}"))?;
    println!("{json}");
    if !summary.deterministic {
        return Err("parallel runs were not bit-identical to serial".into());
    }
    // Perf-regression gate: compare every kernel/forward entry against a
    // committed baseline and fail on >25 % wall-clock regression (or on a
    // baseline row the fresh run no longer measures). Requires the run and
    // the baseline to use the same problem sizes (same --quick setting).
    if let Some(path) = flags.get("check") {
        let base = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let base: bat_bench::perf::PerfSummary =
            serde_json::from_str(&base).map_err(|e| format!("parse {path}: {e}"))?;
        let bad = bat_bench::perf::regressions(&summary, &base, 0.25);
        if bad.is_empty() {
            eprintln!("perf gate: no entry regressed >25% vs {path}");
        } else {
            return Err(format!(
                "perf gate: {} entr{} regressed >25% vs {path}:\n  {}",
                bad.len(),
                if bad.len() == 1 { "y" } else { "ies" },
                bad.join("\n  ")
            ));
        }
    }
    if let Some(out) = flags.get("out") {
        std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
        eprintln!("[artifact] {out}");
    }
    Ok(())
}

fn cold_format(name: &str) -> Result<ColdFormat, String> {
    match name.to_lowercase().as_str() {
        "f32" => Ok(ColdFormat::F32),
        "f16" => Ok(ColdFormat::F16),
        "int8" => Ok(ColdFormat::Int8),
        other => Err(format!("unknown cold format '{other}' (f32|f16|int8)")),
    }
}

fn split_policy(name: &str) -> Result<SplitPolicy, String> {
    let lower = name.to_lowercase();
    if let Some(share) = lower.strip_prefix("static:") {
        let s: f64 = share
            .parse()
            .map_err(|e| format!("bad static share: {e}"))?;
        return Ok(SplitPolicy::Static(s));
    }
    match lower.as_str() {
        "adaptive" => Ok(SplitPolicy::Adaptive),
        "all-user" | "alluser" => Ok(SplitPolicy::AllUser),
        other => Err(format!(
            "unknown split '{other}' (adaptive|static:<user-share>|all-user)"
        )),
    }
}

fn cmd_tiers(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("games", String::as_str))?;
    let model = model(flags.get("model").map_or("qwen2-1.5b", String::as_str))?;
    let duration = flag_f64(flags, "duration", 20.0)?;
    let rate = flag_f64(flags, "rate", 40.0)?;
    let nodes = flag_usize(flags, "nodes", 2)?;
    let hot = Bytes::from_mb(flag_f64(flags, "hot-mb", 200.0)? as u64);
    let cold = Bytes::from_mb(flag_f64(flags, "cold-mb", 400.0)? as u64);
    let format = cold_format(flags.get("format").map_or("int8", String::as_str))?;
    let split = split_policy(flags.get("split").map_or("adaptive", String::as_str))?;

    let cluster = ClusterConfig::a100_4node().with_nodes(nodes);
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
    let trace = gen.generate(duration, rate);
    let base = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds)
        .with_user_cache_capacity(hot);
    let tiers = TiersConfig::new(cold).with_format(format).with_split(split);
    tiers.validate()?;

    // Same trace, same hot budget: the only difference is the cold tier.
    let flat = ServingEngine::new(base.clone())
        .map_err(|e| e.to_string())?
        .run(&trace);
    let tiered = ServingEngine::new(base.with_tiers(Some(tiers)))
        .map_err(|e| e.to_string())?
        .run(&trace);

    println!(
        "{} x{} requests, hot {hot} fixed, cold {cold} {format:?} {split:?}",
        ds.name,
        trace.len(),
    );
    let row = |label: &str, s: &bat::RunStats| {
        vec![
            label.to_owned(),
            f3(s.hit_rate()),
            s.tiers.cold_hits.to_string(),
            s.tiers.demotions.to_string(),
            s.tiers.cold_evictions.to_string(),
            f1(s.qps()),
            f1(s.p99_latency_ms),
        ]
    };
    print_table(
        &[
            "Cache",
            "Hit rate",
            "Cold hits",
            "Demotions",
            "Cold evict",
            "Goodput",
            "p99 (ms)",
        ],
        &[row("flat", &flat), row("tiered", &tiered)],
    );
    println!(
        "tier ledger: occupancy {} / {} cold bytes, budgets user {} item {}",
        tiered.tiers.cold_occupancy_bytes,
        cold.as_u64(),
        tiered.tiers.user_budget_bytes,
        tiered.tiers.item_budget_bytes,
    );
    Ok(())
}

fn transport_kind(name: &str) -> Result<TransportKind, String> {
    match name.to_lowercase().as_str() {
        "channel" => Ok(TransportKind::Channel),
        "uds" => Ok(TransportKind::Uds),
        "tcp" => Ok(TransportKind::Tcp),
        other => Err(format!("unknown transport '{other}' (channel|uds|tcp)")),
    }
}

fn cmd_net(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("games", String::as_str))?;
    let duration = flag_f64(flags, "duration", 10.0)?;
    let rate = flag_f64(flags, "rate", 60.0)?;
    let seed = flag_f64(flags, "seed", 7.0)? as u64;
    let nodes = flag_usize(flags, "nodes", 2)?;
    let scale = flag_f64(flags, "scale", 1e-3)?;
    let model = model(flags.get("model").map_or("qwen2-1.5b", String::as_str))?;
    let kind = transport_kind(flags.get("transport").map_or("uds", String::as_str))?;
    let processes = flags.get("processes").is_some();
    let cluster = ClusterConfig::a100_4node().with_nodes(nodes);

    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), seed), seed ^ 0x5eed);
    let trace = gen.generate(duration, rate);
    let cfg = || EngineConfig::for_system(SystemKind::Bat, model.clone(), cluster.clone(), &ds);
    let serve = |kind: TransportKind, processes: bool| -> Result<bat::RunStats, String> {
        let opts = ServeOptions {
            time_scale: scale,
            transport: kind,
            processes,
            // The child re-executes batctl; maybe_child_worker() diverts
            // it into the worker loop before argument parsing runs, so no
            // arguments are needed.
            child_args: Vec::new(),
            ..ServeOptions::default()
        };
        Ok(ServeRuntime::new(cfg(), opts)
            .map_err(|e| e.to_string())?
            .serve(&trace))
    };

    // The channel oracle first, then the requested backend: same trace,
    // same planner, so the digests must match bit for bit.
    let oracle = serve(TransportKind::Channel, false)?;
    let mode = match (kind, processes) {
        (TransportKind::Channel, _) => "channel threads".to_owned(),
        (k, false) => format!("{k:?} threads").to_lowercase(),
        (k, true) => format!("{k:?} child processes").to_lowercase(),
    };
    let stats = if kind == TransportKind::Channel {
        oracle.clone()
    } else {
        serve(kind, processes)?
    };

    println!(
        "{} on {nodes} nodes over {mode}: {} requests in {duration:.0}s at {rate:.0} qps",
        ds.name,
        trace.len(),
    );
    println!(
        "  completed {}  hit-rate {:.3}  p99 {:.1} ms  digest {:016x}",
        stats.completed,
        stats.hit_rate(),
        stats.p99_latency_ms,
        stats.digest(),
    );
    if kind == TransportKind::Channel {
        return Ok(());
    }
    println!(
        "  channel oracle digest {:016x}: {}",
        oracle.digest(),
        if oracle.digest() == stats.digest() {
            "MATCH (transport is invisible to planner-side stats)"
        } else {
            "MISMATCH"
        },
    );
    if oracle.digest() != stats.digest() {
        return Err(format!(
            "digest mismatch between channel oracle and {mode}: a codec, framing, \
             ordering, or re-dispatch bug is changing planner-visible counts"
        ));
    }
    Ok(())
}

/// Shared harness behind `batctl drain` and `batctl join`: one batched
/// serve under the given membership schedule, with the discrete-event
/// simulator as the ledger oracle. `--processes` injects the events
/// against real child OS processes over Unix sockets — a drain delivers
/// a shutdown frame behind the worker's in-flight frames, a join
/// fork/execs a fresh child that rejoins over the same listener.
fn run_membership(
    flags: &HashMap<String, String>,
    events: Vec<FaultEvent>,
    headline: &str,
) -> Result<(), String> {
    let ds = dataset(flags.get("dataset").map_or("games", String::as_str))?;
    let duration = flag_f64(flags, "duration", 20.0)?;
    let rate = flag_f64(flags, "rate", 60.0)?;
    let seed = flag_f64(flags, "seed", 1.0)? as u64;
    let nodes = flag_usize(flags, "nodes", 2)?;
    let scale = flag_f64(flags, "scale", 1e-3)?;
    let processes = flags.contains_key("processes");
    let model = model(flags.get("model").map_or("qwen2-1.5b", String::as_str))?;
    let cluster = ClusterConfig::a100_4node().with_nodes(nodes);

    let schedule = FaultSchedule::new(nodes, events).map_err(|e| e.to_string())?;
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), seed), seed ^ 0xbadc0ffe);
    let trace = gen.generate(duration, rate);
    let cfg = || {
        EngineConfig::for_system(SystemKind::Bat, model.clone(), cluster.clone(), &ds)
            .with_batching(Some(BatchingConfig::default()))
            .with_faults(Some(schedule.clone()))
    };

    let sim = ServingEngine::new(cfg())
        .map_err(|e| e.to_string())?
        .run(&trace);
    let opts = ServeOptions {
        time_scale: scale,
        transport: if processes {
            TransportKind::Uds
        } else {
            TransportKind::Channel
        },
        processes,
        // A child re-executes batctl; maybe_child_worker() diverts it
        // before argument parsing, so no child arguments are needed.
        child_args: Vec::new(),
        ..ServeOptions::default()
    };
    let stats = ServeRuntime::new(cfg(), opts)
        .map_err(|e| e.to_string())?
        .serve(&trace);
    let b = &stats.batching;

    println!(
        "{} on {nodes} nodes, {} requests over {duration:.0}s at {rate:.0} qps ({}):",
        ds.name,
        trace.len(),
        if processes {
            "uds child processes"
        } else {
            "channel threads"
        },
    );
    println!("{headline}");
    for e in schedule.events() {
        println!("  t={:6.1}s  {:?}", e.at_secs, e.kind);
    }
    println!(
        "\ncompleted {}/{} (membership churn never drops requests)",
        stats.completed,
        trace.len()
    );
    let rows = vec![
        vec!["rounds".to_owned(), b.rounds.to_string()],
        vec!["chunks".to_owned(), b.chunks.to_string()],
        vec!["drains".to_owned(), b.drains.to_string()],
        vec!["joins".to_owned(), b.joins.to_string()],
        vec![
            "migrated requests".to_owned(),
            b.migrated_requests.to_string(),
        ],
        vec!["migrated tokens".to_owned(), b.migrated_tokens.to_string()],
        vec!["batched tokens".to_owned(), b.batched_tokens.to_string()],
    ];
    print_table(&["Membership ledger", "Value"], &rows);

    println!(
        "\nsimulator oracle digest {:016x} / serve digest {:016x}: {}",
        sim.digest(),
        stats.digest(),
        if sim.digest() == stats.digest() {
            "MATCH"
        } else {
            "MISMATCH"
        },
    );
    if stats.completed != trace.len() {
        return Err(format!(
            "membership churn dropped {} requests",
            trace.len() - stats.completed
        ));
    }
    if sim.digest() != stats.digest() {
        return Err(
            "digest mismatch between simulator oracle and serve: the migration \
             path is losing or double-counting chunks"
                .into(),
        );
    }
    Ok(())
}

fn cmd_drain(flags: &HashMap<String, String>) -> Result<(), String> {
    let duration = flag_f64(flags, "duration", 20.0)?;
    let w = flag_usize(flags, "worker", 1)?;
    let at = flag_f64(flags, "at", duration / 3.0)?;
    let events = vec![FaultEvent {
        at_secs: at,
        kind: FaultKind::WorkerDrain(WorkerId::new(w as u64)),
    }];
    run_membership(
        flags,
        events,
        &format!(
            "worker {w} drains at t={at:.1}s: its in-flight round finishes, \
             seated-but-unstarted chunks migrate to the survivors"
        ),
    )
}

fn cmd_join(flags: &HashMap<String, String>) -> Result<(), String> {
    let duration = flag_f64(flags, "duration", 20.0)?;
    let w = flag_usize(flags, "worker", 1)?;
    let leave = flag_f64(flags, "leave", duration / 4.0)?;
    let at = flag_f64(flags, "at", duration / 2.0)?;
    if at <= leave {
        return Err(format!(
            "join at t={at} must come after the drain at t={leave}"
        ));
    }
    let events = vec![
        FaultEvent {
            at_secs: leave,
            kind: FaultKind::WorkerDrain(WorkerId::new(w as u64)),
        },
        FaultEvent {
            at_secs: at,
            kind: FaultKind::WorkerJoin(WorkerId::new(w as u64)),
        },
    ];
    run_membership(
        flags,
        events,
        &format!(
            "worker {w} drains at t={leave:.1}s and a fresh incarnation \
             joins at t={at:.1}s, re-planned into the slot map mid-run"
        ),
    )
}

const USAGE: &str =
    "usage: batctl <compare|accuracy|plan|trace|info|breakdown|faults|overload|meta|net|bench|tiers|drain|join> [--flags]
run `batctl <command>` with no flags for defaults; see crate docs for details
global: --threads N sizes the bat-exec worker pool";

fn main() -> ExitCode {
    // `batctl net --processes` re-executes this binary as a socket worker;
    // the env-var check must run before anything else touches the process.
    bat::maybe_child_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    if let Some(n) = flags.get("threads") {
        match n.parse::<usize>() {
            Ok(n) if n >= 1 => bat::exec::set_threads(n),
            _ => {
                eprintln!("batctl: bad --threads '{n}' (want a positive integer)");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = match cmd.as_str() {
        "compare" => cmd_compare(&flags),
        "accuracy" => cmd_accuracy(&flags),
        "plan" => cmd_plan(&flags),
        "trace" => cmd_trace(&flags),
        "info" => cmd_info(&flags),
        "breakdown" => cmd_breakdown(&flags),
        "faults" => cmd_faults(&flags),
        "overload" => cmd_overload(&flags),
        "meta" => cmd_meta(&flags),
        "net" => cmd_net(&flags),
        "bench" => cmd_bench(&flags),
        "tiers" => cmd_tiers(&flags),
        "drain" => cmd_drain(&flags),
        "join" => cmd_join(&flags),
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("batctl: {e}");
            ExitCode::FAILURE
        }
    }
}
