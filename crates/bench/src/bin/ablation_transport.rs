//! Transport ablation: what does moving frames through real sockets cost,
//! and does it change anything it must not?
//!
//! Three sections:
//!
//! 1. **Determinism gate** — the same seeded trace served over every
//!    backend (in-process channels, UDS threads, TCP threads, and UDS
//!    child *processes* on unix). Every planner-side digest must equal the
//!    channel oracle's; the harness exits nonzero on any mismatch, so CI
//!    can run this as a gate.
//! 2. **Packed-KV segment throughput** — plane-major [`KvSegmentMsg`]
//!    frames pumped through a UDS socket pair and through the channel
//!    backend, versus pure encode/decode. Separates codec cost from
//!    kernel-crossing cost.
//! 3. **Meta echo** — [`MetaCmdMsg`]/[`MetaRespMsg`] round trips against a
//!    real replicated [`MetaGroup`] behind a socket: every committed
//!    receipt must come back `(epoch, index)`-identical to what a local
//!    in-process `submit` would have returned.

use bat::meta::{MetaCommand, MetaGroup};
use bat::{
    Bytes, ClusterConfig, DatasetConfig, EngineConfig, ItemId, ModelConfig, RunStats, ServeOptions,
    ServeRuntime, SystemKind, TransportKind,
};
use bat_bench::{f1, print_table, HarnessArgs};
use bat_net::{
    recv_msg, send_msg, ChannelConn, Conn, KvSegmentMsg, MetaCmdMsg, MetaRespMsg, Transport,
    WireCodec,
};
use bat_tensor::ColBlock;
use bat_workload::{TraceGenerator, Workload};
use std::sync::Arc;
use std::time::Instant;

const NODES: usize = 2;

fn engine_config(ds: &DatasetConfig) -> EngineConfig {
    let mut cluster = ClusterConfig::a100_4node().with_nodes(NODES);
    cluster.node.kv_cache_capacity = Bytes::from_gb(20);
    EngineConfig::for_system(
        SystemKind::UserPrefix,
        ModelConfig::qwen2_1_5b(),
        cluster,
        ds,
    )
}

fn serve(
    cfg: EngineConfig,
    trace: &[bat::RankRequest],
    kind: TransportKind,
    processes: bool,
) -> RunStats {
    let opts = ServeOptions {
        transport: kind,
        processes,
        // A child re-executes this binary; maybe_child_worker() diverts it
        // before argument parsing, so no child arguments are needed.
        child_args: Vec::new(),
        ..ServeOptions::default()
    };
    ServeRuntime::new(cfg, opts)
        .expect("preset options validate")
        .serve(trace)
}

fn determinism_gate(args: &HarnessArgs) -> bool {
    let ds = DatasetConfig {
        num_users: 300,
        ..DatasetConfig::games()
    };
    let duration = args.scale(20.0, 4.0);
    let rate = args.scale(60.0, 40.0);
    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 41), 42);
    let trace = gen.generate(duration, rate);
    println!(
        "determinism gate: {} requests over {duration:.0}s on {NODES} workers",
        trace.len()
    );

    let oracle = serve(engine_config(&ds), &trace, TransportKind::Channel, false);
    let mut rows = Vec::new();
    let mut ok = true;
    let mut row = |label: &str, stats: &RunStats| {
        let matches = stats.digest() == oracle.digest();
        ok &= matches;
        rows.push(vec![
            label.to_owned(),
            stats.completed.to_string(),
            format!("{:.3}", stats.hit_rate()),
            format!("{:016x}", stats.digest()),
            if matches { "yes" } else { "NO" }.to_owned(),
        ]);
    };
    row("channel threads (oracle)", &oracle);
    row(
        "uds threads",
        &serve(engine_config(&ds), &trace, TransportKind::Uds, false),
    );
    row(
        "tcp threads",
        &serve(engine_config(&ds), &trace, TransportKind::Tcp, false),
    );
    #[cfg(unix)]
    row(
        "uds child processes",
        &serve(engine_config(&ds), &trace, TransportKind::Uds, true),
    );
    print_table(
        &["transport", "completed", "hit rate", "digest", "=oracle"],
        &rows,
    );
    ok
}

/// Pumps `n` KV segments through `tx`/`rx` on two threads and returns the
/// payload rate in MiB/s (decode included: the receiver rebuilds the
/// `ColBlock` from every frame).
fn pump_segments(tx: Arc<dyn Conn>, rx: Arc<dyn Conn>, template: &KvSegmentMsg, n: usize) -> f64 {
    let payload_bytes = (template.planes.len() * 4) as f64;
    let start = Instant::now();
    let sender = {
        let msg = template.clone();
        std::thread::spawn(move || {
            for _ in 0..n {
                send_msg(tx.as_ref(), &msg).expect("segment sends");
            }
        })
    };
    let mut rows = 0u64;
    for _ in 0..n {
        let msg: KvSegmentMsg = recv_msg(rx.as_ref()).expect("segment arrives");
        rows += msg.to_block().rows() as u64;
    }
    sender.join().expect("sender thread");
    assert_eq!(rows, n as u64 * u64::from(template.rows));
    payload_bytes * n as f64 / start.elapsed().as_secs_f64() / (1024.0 * 1024.0)
}

fn kv_throughput(args: &HarnessArgs) {
    // One head's packed plane for a 64-token segment at head_dim 256.
    let mut block = ColBlock::new(64);
    for c in 0..256 {
        let col: Vec<f32> = (0..64).map(|r| (r * 256 + c) as f32 * 1e-3).collect();
        block.push_col(&col);
    }
    let msg = KvSegmentMsg::from_block(bat_kvcache::CacheKey::Item(ItemId::new(7)), 0, &block);
    let n = args.scale(20_000, 2_000);

    // Pure codec: encode + decode round trip, no transport.
    let start = Instant::now();
    for _ in 0..n {
        let frame = msg.to_frame();
        let bytes = bat_net::encode_frame(&frame);
        let (decoded, _) = bat_net::decode_frame(&bytes).expect("decodes");
        std::hint::black_box(KvSegmentMsg::from_frame(&decoded).expect("typed"));
    }
    let codec_mibs = (msg.planes.len() * 4) as f64 * n as f64
        / start.elapsed().as_secs_f64()
        / (1024.0 * 1024.0);

    let (a, b) = ChannelConn::pair();
    let channel_mibs = pump_segments(a, b, &msg, n);

    #[cfg(unix)]
    let uds_mibs = {
        let t = bat_net::UdsTransport::new();
        let path = std::env::temp_dir()
            .join(format!("bat-ablation-kv-{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let listener = t.listen(&path).expect("uds binds");
        let client = t.connect(&listener.local_addr()).expect("uds dials");
        let server = listener
            .accept_timeout(std::time::Duration::from_secs(5))
            .expect("uds accepts");
        pump_segments(client, server, &msg, n)
    };
    #[cfg(not(unix))]
    let uds_mibs = f64::NAN;

    println!(
        "\nkv segment throughput ({} x {} f32 planes, {} segments):",
        msg.rows, msg.cols, n
    );
    print_table(
        &["path", "MiB/s"],
        &[
            vec!["encode+decode only".into(), f1(codec_mibs)],
            vec!["channel conn (no bytes)".into(), f1(channel_mibs)],
            vec!["uds socket".into(), f1(uds_mibs)],
        ],
    );
}

fn meta_echo(args: &HarnessArgs) {
    let n = args.scale(5_000, 500);
    let replicas = 3;
    // The wire client and the local oracle drive two identical groups;
    // every receipt that crosses the socket must match the local one.
    let mut local = MetaGroup::new(replicas, 11);
    let mut remote = MetaGroup::new(replicas, 11);
    local.ensure_leader().expect("fresh group elects");
    remote.ensure_leader().expect("fresh group elects");

    let t = bat_net::TcpTransport::new();
    let listener = t.listen("127.0.0.1:0").expect("tcp binds");
    let client = t.connect(&listener.local_addr()).expect("tcp dials");
    let server = listener
        .accept_timeout(std::time::Duration::from_secs(5))
        .expect("tcp accepts");

    let server_thread = std::thread::spawn(move || {
        let mut committed = 0u64;
        while let Ok(cmd) = recv_msg::<MetaCmdMsg>(server.as_ref()) {
            let result = remote.try_append_via(cmd.via as usize, &cmd.cmd);
            if result.is_ok() {
                committed += 1;
            }
            send_msg(
                server.as_ref(),
                &MetaRespMsg {
                    seq: cmd.seq,
                    result: result.into(),
                },
            )
            .expect("response sends");
        }
        (remote, committed)
    });

    let start = Instant::now();
    let mut mismatches = 0usize;
    for seq in 0..n as u64 {
        let cmd = MetaCommand::RegisterEntry {
            key: bat_kvcache::CacheKey::Item(ItemId::new(seq)),
            bytes: 4096 + seq,
        };
        let via = (seq % replicas as u64) as u32;
        send_msg(client.as_ref(), &MetaCmdMsg { seq, via, cmd }).expect("command sends");
        let resp: MetaRespMsg = recv_msg(client.as_ref()).expect("response arrives");
        assert_eq!(resp.seq, seq, "responses must come back in order");
        let wire: Result<_, _> = resp.result.into();
        let oracle = local.try_append_via(via as usize, &cmd);
        if wire != oracle {
            mismatches += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    client.close();
    let (remote, committed) = server_thread.join().expect("server thread");

    println!("\nmeta echo over tcp: {n} commands, {replicas}-replica group");
    print_table(
        &["metric", "value"],
        &[
            vec!["round trips/s".into(), f1(n as f64 / elapsed)],
            vec!["committed".into(), committed.to_string()],
            vec!["receipt mismatches vs local".into(), mismatches.to_string()],
            vec!["final epoch".into(), remote.epoch().to_string()],
            vec!["replicas agree".into(), remote.replicas_agree().to_string()],
        ],
    );
    assert_eq!(mismatches, 0, "wire receipts must match local receipts");
    assert!(remote.replicas_agree());
}

fn main() {
    // A `--processes` determinism-gate child re-enters this binary.
    bat::maybe_child_worker();
    let args = HarnessArgs::parse();
    let ok = determinism_gate(&args);
    kv_throughput(&args);
    meta_echo(&args);
    assert!(
        ok,
        "transport determinism gate failed: socket backend diverged from the channel oracle"
    );
    println!("\ntransport determinism gate: PASS");
}
