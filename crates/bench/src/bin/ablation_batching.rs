//! Continuous-batching ablation: the sustained-throughput story behind
//! the slot scheduler.
//!
//! The workload is the regime where per-request dispatch overhead rivals
//! the service itself: short prompts (every request fits in one prefill
//! chunk) arriving at saturation, with a 3x burst in the middle segment.
//! The baseline dispatches per request (`max_batched_tokens = 1`, one
//! batch overhead per request); the continuous run seats chunks from all
//! in-flight requests into fixed worker slots and refills the moment any
//! chunk retires, amortizing the overhead across every seated chunk.
//!
//! Gates:
//! - continuous batching sustains ≥ 1.3x the baseline throughput on the
//!   same trace (both runs complete every request — the win is a shorter
//!   span, not dropped work);
//! - at saturation no worker idle gap exceeds one chunk service (the
//!   refill-on-retire property, measured by the scheduler itself);
//! - the threaded serve runtime forms bitwise-identical batches to the
//!   simulator (RunStats digest match) — batch formation runs on nominal
//!   time, so wall-clock jitter and thread interleaving cannot move it.

use bat::{
    BatchingConfig, ClusterConfig, DatasetConfig, EngineConfig, ModelConfig, RankRequest, RunStats,
    ServeOptions, ServeRuntime, ServingEngine, SystemKind, TraceGenerator, Workload,
};
use bat_bench::{f1, print_table, write_artifact, HarnessArgs};

/// Steady / 3x burst / recovery segments on one resumable timeline.
fn burst_trace(ds: &DatasetConfig, segment: f64, rate: f64) -> Vec<RankRequest> {
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 11), 12);
    let mut trace = g.generate(segment, rate);
    trace.extend(g.generate(segment, 3.0 * rate));
    trace.extend(g.generate(segment, rate));
    trace
}

fn main() {
    let args = HarnessArgs::parse();
    let segment = args.scale(1.5, 0.5);
    let rate = args.scale(2000.0, 2000.0);

    // Short-prompt saturation: ~10-candidate prompts of 8-token items over
    // a 120-token user prefix, so a whole request fits in one 512-token
    // chunk and rounds fuse up to `slots_per_worker` requests.
    let ds = DatasetConfig {
        num_users: 300,
        avg_user_tokens: 120,
        avg_item_tokens: 8,
        candidates_per_request: 10,
        ..DatasetConfig::games()
    };
    let mut cluster = ClusterConfig::a100_4node();
    cluster.num_nodes = 2;
    let trace = burst_trace(&ds, segment, rate);
    println!(
        "{} requests over {:.1}s on {} workers; 3x burst in [{:.1}s, {:.1}s)",
        trace.len(),
        3.0 * segment,
        cluster.num_nodes,
        segment,
        2.0 * segment,
    );

    // Per-request baseline: one batch overhead per request.
    let mut base_cluster = cluster.clone();
    base_cluster.max_batched_tokens = 1;
    let base_cfg = EngineConfig::for_system(
        SystemKind::Bat,
        ModelConfig::qwen2_1_5b(),
        base_cluster,
        &ds,
    );
    let cont_cfg =
        EngineConfig::for_system(SystemKind::Bat, ModelConfig::qwen2_1_5b(), cluster, &ds)
            .with_batching(Some(BatchingConfig {
                slots_per_worker: 8,
                chunk_tokens: 512,
            }));

    let base = ServingEngine::new(base_cfg)
        .expect("config valid")
        .run(&trace);
    let cont = ServingEngine::new(cont_cfg.clone())
        .expect("config valid")
        .run(&trace);
    let served: RunStats = ServeRuntime::new(
        cont_cfg,
        ServeOptions {
            time_scale: 1e-3,
            ..ServeOptions::default()
        },
    )
    .expect("config valid")
    .serve(&trace);

    let b = &cont.batching;
    let row = |label: &str, s: &RunStats| {
        vec![
            label.to_owned(),
            s.completed.to_string(),
            f1(s.qps()),
            s.batching.rounds.to_string(),
            s.batching.chunks.to_string(),
            s.batching.peak_seated.to_string(),
        ]
    };
    print_table(
        &[
            "Dispatch",
            "Completed",
            "QPS",
            "Rounds",
            "Chunks",
            "Peak seats",
        ],
        &[
            row("per-request", &base),
            row("continuous (sim)", &cont),
            row("continuous (serve)", &served),
        ],
    );

    let ratio = cont.qps() / base.qps();
    let complete = base.completed == trace.len() && cont.completed == trace.len();
    let throughput_holds = ratio >= 1.3;
    let no_idle_gaps = b.max_idle_gap_over_chunk <= 1.0;
    let digests_match = served.digest() == cont.digest();
    println!(
        "\nthroughput vs per-request: {ratio:.3}x (gate ≥ 1.3x: {}) | max idle gap {:.3} chunks (gate ≤ 1: {}) | serve digest {:016x} vs sim {:016x}: {}",
        if throughput_holds { "yes" } else { "NO" },
        b.max_idle_gap_over_chunk,
        if no_idle_gaps { "yes" } else { "NO" },
        served.digest(),
        cont.digest(),
        if digests_match { "MATCH" } else { "MISMATCH" },
    );

    write_artifact(
        "ablation_batching.json",
        &serde_json::json!({
            "segment_secs": segment,
            "rate": rate,
            "requests": trace.len(),
            "baseline_qps": base.qps(),
            "continuous_qps": cont.qps(),
            "throughput_ratio": ratio,
            "batching": b,
            "serve_digest": format!("{:016x}", served.digest()),
            "sim_digest": format!("{:016x}", cont.digest()),
            "gate_1_3x": throughput_holds,
            "gate_no_idle_gaps": no_idle_gaps,
            "gate_digest_match": digests_match,
            "gate_complete": complete,
        }),
    );
    if !(complete && throughput_holds && no_idle_gaps && digests_match) {
        std::process::exit(1);
    }
}
