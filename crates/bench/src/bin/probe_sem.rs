//! Development probe for semantic-world calibration (not a paper harness).

use bat::{MaskScheme, PrefixKind, SemanticConfig, SemanticWorld};

fn hit(r: &[usize], k: usize) -> f64 {
    r.iter().filter(|&&x| x < k).count() as f64 / r.len() as f64
}

fn main() {
    // PIC check on the order-sensitive variant.
    let n_pic = 40;
    let cfg = SemanticConfig::table3_world(301).order_biased();
    let w = SemanticWorld::generate(cfg);
    let up = w.eval_ranks(PrefixKind::User, MaskScheme::Bipartite, n_pic);
    let ip = w.eval_ranks(PrefixKind::Item, MaskScheme::Bipartite, n_pic);
    let pic: Vec<usize> = (0..n_pic)
        .map(|u| {
            let t = w.task(u);
            bat::rank_of(&w.score_with_pic(&t, 0.15), t.truth_pos)
        })
        .collect();
    println!(
        "sensitive cell: R@10 UP={:.3} IP={:.3} IP+PIC={:.3}",
        hit(&up, 10),
        hit(&ip, 10),
        hit(&pic, 10)
    );

    let n = 60;
    for qk in [0.5f32, 0.7, 1.0, 1.4] {
        let mut up_sum = 0.0;
        let mut ip_sum = 0.0;
        for seed in [11u64, 22, 33] {
            let mut cfg = SemanticConfig::table3_world(seed);
            cfg.qk_scale = qk;
            let w = SemanticWorld::generate(cfg);
            let up = w.eval_ranks(PrefixKind::User, MaskScheme::Bipartite, n);
            let ip = w.eval_ranks(PrefixKind::Item, MaskScheme::Bipartite, n);
            up_sum += hit(&up, 10);
            ip_sum += hit(&ip, 10);
        }
        println!(
            "qk={qk:4}  R@10 UP={:.3} IP={:.3} gap={:+.3}",
            up_sum / 3.0,
            ip_sum / 3.0,
            up_sum / 3.0 - ip_sum / 3.0
        );
    }
}
