//! Fault-recovery ablation: the availability story behind the fault
//! subsystem.
//!
//! One of four cache workers is killed a third of the way into the trace
//! and restarts halfway through. The harness reports the windowed
//! hit-rate availability curve around the outage, the dip depth, and the
//! time until the hit rate returned to the pre-fault steady state —
//! demonstrating that HRCS degrades gracefully (surviving replicas keep
//! hot items local, cold-shard misses fall back to recompute, nothing is
//! dropped) and that the background refresh re-warms the returned worker.

use bat::{
    ClusterConfig, DatasetConfig, EngineConfig, FaultSchedule, ModelConfig, ServingEngine,
    SystemKind, WorkerId,
};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};
use bat_workload::{TraceGenerator, Workload};

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(300.0, 30.0);
    let rate = args.scale(150.0, 150.0);
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node();
    let ds = DatasetConfig::games();

    let mut gen = TraceGenerator::new(Workload::new(ds.clone(), 7), 9);
    let trace = gen.generate(duration, rate);

    let crash_at = duration / 3.0;
    let restart_at = duration / 2.0;
    let schedule = FaultSchedule::single_crash(4, WorkerId::new(1), crash_at, restart_at)
        .expect("restart follows crash");
    println!(
        "{} requests over {duration:.0}s on 4 workers; worker 1 down [{crash_at:.0}s, {restart_at:.0}s)",
        trace.len()
    );

    let base = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds);
    let healthy_cfg = EngineConfig {
        label: "BAT (healthy)".to_owned(),
        ..base.clone()
    };
    let faulted_cfg = EngineConfig {
        label: "BAT (1/4 crash)".to_owned(),
        ..base
    }
    .with_faults(Some(schedule));

    let healthy = ServingEngine::new(healthy_cfg)
        .expect("config valid")
        .run(&trace);
    let mut engine = ServingEngine::new(faulted_cfg).expect("config valid");
    let faulted = engine.run(&trace);
    let timeline = engine.planner().fault_timeline();
    let report = &faulted.faults;

    // Availability curve: windowed hit rate through the outage.
    println!("\nAvailability curve (windowed hit rate):");
    let step = (timeline.len() / 12).max(1);
    let curve_rows: Vec<Vec<String>> = timeline
        .iter()
        .step_by(step)
        .map(|&(t, h)| {
            let phase = if t <= crash_at {
                "steady"
            } else if t <= restart_at {
                "outage"
            } else {
                "recovery"
            };
            vec![format!("{t:7.1}"), f3(h), phase.to_owned()]
        })
        .collect();
    print_table(&["t (s)", "hit rate", "phase"], &curve_rows);

    // Post-recovery steady state: windows after the reported recovery
    // point (or after the restart when recovery never registered).
    let recovered_at = if report.time_to_recover_secs >= 0.0 {
        crash_at + report.time_to_recover_secs
    } else {
        restart_at
    };
    let post: Vec<f64> = timeline
        .iter()
        .filter(|(t, _)| *t > recovered_at)
        .map(|(_, h)| *h)
        .collect();
    let post_rate = post.iter().sum::<f64>() / post.len().max(1) as f64;

    let rows = vec![
        vec![
            "completed".to_owned(),
            format!("{}/{}", faulted.completed, trace.len()),
            format!("{}/{}", healthy.completed, trace.len()),
        ],
        vec!["QPS".to_owned(), f1(faulted.qps()), f1(healthy.qps())],
        vec![
            "hit rate (whole run)".to_owned(),
            f3(faulted.hit_rate()),
            f3(healthy.hit_rate()),
        ],
        vec![
            "pre-fault steady hit rate".to_owned(),
            f3(report.pre_fault_hit_rate),
            "-".to_owned(),
        ],
        vec![
            "min hit rate during outage".to_owned(),
            f3(report.min_hit_rate_after_fault),
            "-".to_owned(),
        ],
        vec![
            "hit-rate dip".to_owned(),
            f3(report.hit_rate_dip),
            "-".to_owned(),
        ],
        vec![
            "time to recover (s)".to_owned(),
            f1(report.time_to_recover_secs),
            "-".to_owned(),
        ],
        vec![
            "post-recovery hit rate".to_owned(),
            f3(post_rate),
            "-".to_owned(),
        ],
        vec![
            "entries invalidated".to_owned(),
            format!("{}", report.invalidated_entries),
            "0".to_owned(),
        ],
        vec![
            "recompute fallbacks".to_owned(),
            format!("{}", report.recompute_fallbacks),
            "0".to_owned(),
        ],
        vec![
            "items re-warmed".to_owned(),
            format!("{}", report.rewarmed_items),
            "0".to_owned(),
        ],
    ];
    println!();
    print_table(&["Metric", "1/4 crash", "healthy"], &rows);

    let completes_all = faulted.completed == trace.len();
    let recovers = (report.pre_fault_hit_rate - post_rate).abs() <= 0.05;
    println!(
        "\n100% completion under the outage: {} | post-recovery within 5% of steady state: {}",
        if completes_all { "yes" } else { "NO" },
        if recovers { "yes" } else { "NO" },
    );

    write_artifact(
        "ablation_fault_recovery.json",
        &serde_json::json!({
            "duration_secs": duration,
            "crash_at": crash_at,
            "restart_at": restart_at,
            "requests": trace.len(),
            "completed": faulted.completed,
            "healthy_hit_rate": healthy.hit_rate(),
            "post_recovery_hit_rate": post_rate,
            "availability_curve": timeline,
            "fault_report": report,
            "completes_all": completes_all,
            "recovers_within_5pct": recovers,
        }),
    );
}
