//! Figure 7: impact of HRCS item cache placement (§6.4).
//!
//! Books dataset, Qwen2-1.5B, 4 nodes × 150 GB KV budget, comparing
//! BAT (HRCS), BAT-Replicate (full item cache everywhere) and BAT-Hash
//! (1/N per node) under 10 Gbps and 100 Gbps networks.
//!
//! Expected shape (paper): Replicate never touches the network but starves
//! the user cache; Hash maximizes user-cache space but pays ~31 % of
//! inference latency in communication at 10 Gbps (dropping it to ~78 % of
//! Replicate's throughput); HRCS replicates only the hot head and wins at
//! both bandwidths (+10 % / +16 % over Replicate).
//!
//! `--alpha-sweep` additionally prints the replication-ratio sensitivity to
//! Algorithm 1's α (an ablation of the design knob DESIGN.md calls out).

use bat::experiment::{run_config, ComparisonSpec};
use bat::{
    ClusterConfig, DatasetConfig, EngineConfig, ItemPlacementPlan, ModelConfig, PlacementStrategy,
    SystemKind,
};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};
use bat_placement::{compute_replication_ratio, HrcsParams};
use bat_sim::ComputeModel;
use bat_workload::ZipfLaw;

fn hrcs_ratio(model: &ModelConfig, cluster: &ClusterConfig, ds: &DatasetConfig) -> f64 {
    let compute = ComputeModel::new(model.clone(), cluster.node.clone());
    let law = ZipfLaw::new(ds.num_items, ds.item_zipf_exponent);
    let params = HrcsParams {
        bandwidth_tokens_per_sec: compute.net_tokens_per_sec(),
        prefill_time_secs: compute.prefill_estimate_secs(
            ds.avg_user_tokens as u64,
            ds.avg_prompt_item_tokens() as u64,
        ),
        alpha: cluster.alpha,
        candidates_per_request: ds.candidates_per_request,
        avg_item_tokens: ds.avg_item_tokens as f64,
        num_workers: cluster.num_nodes,
    };
    compute_replication_ratio(&params, &law)
}

fn main() {
    let args = HarnessArgs::parse();
    let alpha_sweep = std::env::args().any(|a| a == "--alpha-sweep");
    let duration = args.scale(1200.0, 60.0);
    let model = ModelConfig::qwen2_1_5b();
    let ds = DatasetConfig::books();

    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for gbps in [10.0, 100.0] {
        let mut cluster = ClusterConfig::a100_4node();
        cluster.node = cluster.node.with_network_gbps(gbps);
        let item_kv = model.kv_bytes(ds.avg_item_tokens as u64);
        let r = hrcs_ratio(&model, &cluster, &ds);
        let plans = [
            (
                "BAT (HRCS)",
                ItemPlacementPlan::new(
                    PlacementStrategy::Hrcs,
                    ds.num_items,
                    cluster.num_nodes,
                    r,
                    item_kv,
                ),
            ),
            (
                "BAT-Replicate",
                ItemPlacementPlan::new(
                    PlacementStrategy::Replicate,
                    ds.num_items,
                    cluster.num_nodes,
                    1.0,
                    item_kv,
                ),
            ),
            (
                "BAT-Hash",
                ItemPlacementPlan::new(
                    PlacementStrategy::HashShard,
                    ds.num_items,
                    cluster.num_nodes,
                    0.0,
                    item_kv,
                ),
            ),
        ];
        let rate = bat::experiment::saturation_offered_rate(&model, &cluster, &ds, 3.0);
        let spec = ComparisonSpec {
            model: model.clone(),
            cluster: cluster.clone(),
            dataset: ds.clone(),
            duration_secs: duration,
            offered_rate: rate,
            seed: 7,
        };
        for (label, plan) in plans {
            let cfg =
                EngineConfig::for_system(SystemKind::Bat, model.clone(), cluster.clone(), &ds)
                    .with_placement(Some(plan.clone()));
            let cfg = EngineConfig {
                label: label.to_owned(),
                ..cfg
            };
            let stats = run_config(&spec, cfg).expect("fig7 plans fit the 150GB budget");
            rows.push(vec![
                format!("{gbps:.0}Gbps"),
                label.to_owned(),
                f3(plan.replication_ratio()),
                format!("{}", plan.per_worker_bytes()),
                f1(stats.qps()),
                f3(stats.hit_rate()),
                f3(stats.net_over_compute()),
            ]);
            artifact.push(serde_json::json!({
                "network_gbps": gbps, "placement": label,
                "replication_ratio": plan.replication_ratio(),
                "item_bytes_per_node": plan.per_worker_bytes().as_u64(),
                "qps": stats.qps(), "hit_rate": stats.hit_rate(),
                "net_over_compute": stats.net_over_compute(),
            }));
        }
    }
    println!("Figure 7: item-cache placement comparison (Books, Qwen2-1.5B, 4 nodes)");
    print_table(
        &[
            "Network",
            "Placement",
            "ReplRatio",
            "Item/node",
            "QPS",
            "HitRate",
            "Net/Compute",
        ],
        &rows,
    );

    if alpha_sweep {
        println!("\nAblation: HRCS replication ratio vs α (10Gbps)");
        let mut cluster = ClusterConfig::a100_4node();
        cluster.node = cluster.node.with_network_gbps(10.0);
        let mut rows = Vec::new();
        for alpha in [0.01, 0.02, 0.05, 0.1, 0.2, 0.5] {
            cluster.alpha = alpha;
            rows.push(vec![
                format!("{alpha}"),
                f3(hrcs_ratio(&model, &cluster, &ds)),
            ]);
        }
        print_table(&["alpha", "replication ratio r"], &rows);
    }

    write_artifact("fig7_placement.json", &artifact);
}
