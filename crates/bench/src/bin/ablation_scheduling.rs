//! Scheduling-policy ablation (DESIGN.md §5).
//!
//! Two studies beyond the paper's Figure 8:
//!
//! 1. **Policy ladder** — static IP, cache-agnostic, BAT's hotness-aware
//!    rule, and a clairvoyant *oracle* that reads each user's true future
//!    request count from the trace. The oracle bounds what any online
//!    frequency estimator could achieve; hotness-aware should land between
//!    cache-agnostic and the oracle.
//! 2. **Frequency-window sweep** — the estimator's window `W` (§5.3
//!    evaluates 5 min and 60 min): too short forgets returning users, too
//!    long mistakes stale users for hot ones.

use bat::experiment::{saturation_offered_rate, ComparisonSpec};
use bat::{ClusterConfig, DatasetConfig, EngineConfig, ModelConfig, ServingEngine, SystemKind};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};
use bat_sched::OraclePolicy;
use bat_sim::PolicyKind;

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(1200.0, 60.0);
    let model = ModelConfig::qwen2_1_5b();
    let cluster = ClusterConfig::a100_4node();
    let ds = DatasetConfig::books();
    let rate = saturation_offered_rate(&model, &cluster, &ds, 3.0);
    let spec = ComparisonSpec {
        model: model.clone(),
        cluster: cluster.clone(),
        dataset: ds.clone(),
        duration_secs: duration,
        offered_rate: rate,
        seed: 21,
    };
    let trace = spec.trace();
    let base = EngineConfig::for_system(SystemKind::Bat, model.clone(), cluster, &ds);

    println!(
        "Scheduling-policy ladder (Books, Qwen2-1.5B, {} requests)",
        trace.len()
    );
    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    let ladder: Vec<(&str, PolicyKind, bool)> = vec![
        ("static IP", PolicyKind::StaticItem, false),
        ("cache-agnostic", PolicyKind::CacheAgnostic, false),
        ("hotness-aware (BAT)", PolicyKind::HotnessAware, false),
        ("oracle (clairvoyant)", PolicyKind::HotnessAware, true),
    ];
    for (label, policy, oracle) in ladder {
        let cfg = EngineConfig {
            label: label.to_owned(),
            policy,
            ..base.clone()
        };
        let mut engine = ServingEngine::new(cfg).expect("config valid");
        if oracle {
            engine.set_policy(Box::new(OraclePolicy::from_arrivals(
                trace.iter().map(|r| (r.arrival.as_secs(), r.user)),
                base.freq_window_secs,
                model.kv_bytes_per_token(),
            )));
        }
        let stats = engine.run(&trace);
        rows.push(vec![
            label.to_owned(),
            f1(stats.qps()),
            f3(stats.hit_rate()),
            f3(stats.up_share()),
        ]);
        artifact.push(serde_json::json!({
            "policy": label, "qps": stats.qps(),
            "hit_rate": stats.hit_rate(), "up_share": stats.up_share(),
        }));
    }
    print_table(&["Policy", "QPS", "HitRate", "UP share"], &rows);

    println!("\nFrequency-estimator window sweep (hotness-aware policy)");
    let mut rows = Vec::new();
    for window in [60.0f64, 300.0, 600.0, 1800.0, 3600.0] {
        let cfg = EngineConfig {
            label: format!("W={window}s"),
            freq_window_secs: window,
            ..base.clone()
        };
        let mut engine = ServingEngine::new(cfg).expect("config valid");
        let stats = engine.run(&trace);
        rows.push(vec![
            format!("{window:.0}s"),
            f1(stats.qps()),
            f3(stats.hit_rate()),
            f3(stats.up_share()),
        ]);
        artifact.push(serde_json::json!({
            "window_secs": window, "qps": stats.qps(),
            "hit_rate": stats.hit_rate(), "up_share": stats.up_share(),
        }));
    }
    print_table(&["Window W", "QPS", "HitRate", "UP share"], &rows);
    write_artifact("ablation_scheduling.json", &artifact);
}
