//! Figure 11: serving throughput vs node count (§6.6).
//!
//! Industry-1M, Qwen2-1.5B, H20 production nodes scaled 1 → 16. Requests
//! are data-parallel across inference workers and HRCS keeps item-cache
//! traffic local, so BAT's throughput grows near-linearly.

use bat::experiment::{compare_systems, saturation_offered_rate, ComparisonSpec};
use bat::{ClusterConfig, DatasetConfig, ModelConfig, SystemKind};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(90.0, 15.0);
    let model = ModelConfig::qwen2_1_5b();
    let ds = DatasetConfig::industry_x(1_000_000);
    let node_counts = [1usize, 2, 4, 8, 16];

    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    let mut qps_at_1 = 0.0f64;
    for &n in &node_counts {
        let cluster = ClusterConfig::h20_16node().with_nodes(n);
        let rate = saturation_offered_rate(&model, &cluster, &ds, 3.0);
        let spec = ComparisonSpec {
            model: model.clone(),
            cluster,
            dataset: ds.clone(),
            duration_secs: duration,
            offered_rate: rate,
            seed: 11,
        };
        let stats = compare_systems(&spec, &[SystemKind::Bat]);
        let s = &stats[0];
        if n == 1 {
            qps_at_1 = s.qps();
        }
        let speedup = s.qps() / qps_at_1.max(1e-9);
        rows.push(vec![
            n.to_string(),
            f1(s.qps()),
            format!("{speedup:.2}x"),
            f3(speedup / n as f64),
            f3(s.hit_rate()),
        ]);
        artifact.push(serde_json::json!({
            "nodes": n, "qps": s.qps(), "speedup": speedup,
            "efficiency": speedup / n as f64, "hit_rate": s.hit_rate(),
        }));
    }
    println!("Figure 11: BAT throughput vs node count (Industry-1M, Qwen2-1.5B, H20 nodes)");
    print_table(&["Nodes", "QPS", "Speedup", "Efficiency", "HitRate"], &rows);
    println!("\n(paper: near-linear scaling from 1 to 16 nodes)");
    write_artifact("fig11_node_scaling.json", &artifact);
}
