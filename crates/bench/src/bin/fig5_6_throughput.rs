//! Figures 5 & 6: end-to-end throughput (QPS) and cache hit rate across
//! datasets and models (§6.2).
//!
//! Grid: {RE, UP, IP, BAT} × {Games, Beauty, Books, Industry} ×
//! {Qwen2-1.5B, Qwen2-7B, Llama3-1B}, on the 4-node A100 testbed, offered
//! load above saturation so completion rate measures capacity.
//!
//! Expected shape (paper): BAT highest everywhere — up to ~2.3× RE and up
//! to ~1.6× UP; hit rate up to ~58 %; UP beats IP only on Games (high user
//! frequency); on Industry BAT ≈ IP (item cache leaves little user room).

use bat::experiment::{compare_systems, saturation_offered_rate, ComparisonSpec};
use bat::{ClusterConfig, DatasetConfig, ModelConfig, SystemKind};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(600.0, 60.0);
    let cluster = ClusterConfig::a100_4node();
    let systems = [
        SystemKind::Recompute,
        SystemKind::UserPrefix,
        SystemKind::ItemPrefix,
        SystemKind::Bat,
    ];
    let models = if args.quick {
        vec![ModelConfig::qwen2_1_5b()]
    } else {
        ModelConfig::table2_presets()
    };

    // Every (model × dataset) cell is an independent simulation, so the
    // grid fans out on the bat-exec pool (compare_systems parallelizes the
    // four systems inside each cell as well); results come back in grid
    // order, so the printed table matches the serial sweep exactly.
    let cells: Vec<(ModelConfig, DatasetConfig)> = models
        .iter()
        .flat_map(|m| {
            DatasetConfig::table1_presets()
                .into_iter()
                .map(move |ds| (m.clone(), ds))
        })
        .collect();
    let cell_stats = bat::exec::parallel_map(&cells, 1, |(model, ds)| {
        let rate = saturation_offered_rate(model, &cluster, ds, 3.0);
        let spec = ComparisonSpec {
            model: model.clone(),
            cluster: cluster.clone(),
            dataset: ds.clone(),
            duration_secs: duration,
            offered_rate: rate,
            seed: 1,
        };
        compare_systems(&spec, &systems)
    });

    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for ((model, ds), stats) in cells.iter().zip(&cell_stats) {
        let re_qps = stats[0].qps();
        let up_qps = stats[1].qps();
        for s in stats {
            rows.push(vec![
                model.name.clone(),
                ds.name.clone(),
                s.system.clone(),
                f1(s.qps()),
                f3(s.hit_rate()),
                f3(s.computation_savings()),
                format!("{:.2}x", s.qps() / re_qps),
                format!("{:.2}x", s.qps() / up_qps),
            ]);
            artifact.push(serde_json::json!({
                "model": model.name, "dataset": ds.name, "system": s.system,
                "qps": s.qps(), "hit_rate": s.hit_rate(),
                "savings": s.computation_savings(),
                "vs_re": s.qps() / re_qps, "vs_up": s.qps() / up_qps,
            }));
        }
    }
    println!("Figures 5 & 6: saturation QPS and cache hit rate (4-node A100 testbed)");
    print_table(
        &[
            "Model", "Dataset", "System", "QPS", "HitRate", "Savings", "vs RE", "vs UP",
        ],
        &rows,
    );

    // Headline shape checks (printed, not asserted — EXPERIMENTS.md records them).
    let best = artifact
        .iter()
        .filter(|v| v["system"] == "BAT")
        .map(|v| {
            (
                v["vs_up"].as_f64().unwrap(),
                v["hit_rate"].as_f64().unwrap(),
            )
        })
        .fold((0.0f64, 0.0f64), |a, b| (a.0.max(b.0), a.1.max(b.1)));
    println!(
        "\nBAT max speedup over UP: {:.2}x (paper: up to 1.6x)",
        best.0
    );
    println!("BAT max hit rate:        {:.3}  (paper: up to 58%)", best.1);

    write_artifact("fig5_6_throughput.json", &artifact);
}
