//! Overload-control ablation: the goodput story behind the SLO control
//! plane.
//!
//! A steady trace carries a 3x arrival burst through a cluster whose
//! worker 1 is simultaneously a 5x straggler and sits behind a
//! near-outage link (worker 1 holds hot replicated items, so the
//! SlowLink lands on the busiest KV-pull path); during recovery worker 0
//! additionally crashes and rejoins cold, forcing replicated pulls to
//! hedge between the slowed holder and a healthy one. The harness
//! compares goodput — requests completed within their deadline — against
//! a fault-free run of the same trace, and reports what each
//! control-plane mechanism did: admission rejections by reason, brownout
//! rung transitions, hedged and backoff-retried remote pulls, and
//! expired-queue sheds.
//!
//! The gate: with every fault active at once, the control plane must hold
//! goodput at ≥ 85% of the no-fault run instead of letting the latency
//! distribution collapse.

use bat::{
    ClusterConfig, DatasetConfig, EngineConfig, FaultEvent, FaultKind, FaultSchedule, ModelConfig,
    OverloadConfig, Priority, RankRequest, RunStats, ServingEngine, SloBudget, SystemKind,
    TraceGenerator, WorkerId, Workload,
};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};

fn burst_trace(ds: &DatasetConfig, segment: f64, rate: f64, deadline: f64) -> Vec<RankRequest> {
    let mut g = TraceGenerator::new(Workload::new(ds.clone(), 7), 9);
    // The generator is resumable: consecutive calls extend one timeline.
    g.set_slo(SloBudget::with_deadline(deadline).at_priority(Priority::Normal));
    let mut trace = g.generate(segment, rate);
    // The burst is best-effort traffic: it may be shed first (rung 3).
    g.set_slo(SloBudget::with_deadline(deadline).at_priority(Priority::Low));
    trace.extend(g.generate(segment, 3.0 * rate));
    g.set_slo(SloBudget::with_deadline(deadline).at_priority(Priority::Normal));
    trace.extend(g.generate(segment, rate));
    trace
}

/// The compound fault schedule.
///
/// Worker 1's link to the scheduler-side worker degrades to a near-outage
/// 150x from the start of the burst until halfway through the recovery
/// segment. At that severity a single-holder pull's slow-link surcharge
/// exceeds the seeded backoff window, so the planner's economics tip
/// toward retry-with-backoff instead of enduring the transfer — the tail
/// past the burst lets the ladder step back below rung 2 while the link
/// is still slow, which is when those retries fire.
///
/// Early in the recovery segment worker 0 crashes and rejoins cold.
/// While it re-warms, hot replicated prefixes must come from a remote
/// holder; the first candidate sits behind the slowed link, so the
/// planner dual-issues against the next replica and takes the winner.
fn fault_events(burst_start: f64, slow_until: f64, segment: f64) -> Vec<FaultEvent> {
    let slow = |at_secs, factor| FaultEvent {
        at_secs,
        kind: FaultKind::SlowLink {
            a: WorkerId::new(0),
            b: WorkerId::new(1),
            factor,
        },
    };
    vec![
        slow(burst_start, 150.0),
        FaultEvent {
            at_secs: 2.05 * segment,
            kind: FaultKind::WorkerCrash(WorkerId::new(0)),
        },
        FaultEvent {
            at_secs: 2.1 * segment,
            kind: FaultKind::WorkerRestart(WorkerId::new(0)),
        },
        slow(slow_until, 1.0),
    ]
}

fn run(cfg: EngineConfig, trace: &[RankRequest]) -> RunStats {
    ServingEngine::new(cfg).expect("config valid").run(trace)
}

fn main() {
    let args = HarnessArgs::parse();
    // The trace generator's sessions return over time, so the effective
    // arrival rate climbs with the horizon; the full run needs a lower
    // nominal rate than the quick run to keep the *no-fault* baseline out
    // of sustained overload (the ablation is about faults, not sizing).
    let segment = args.scale(30.0, 4.0);
    let rate = args.scale(240.0, 400.0);
    // Generous enough that the backlog (bounded at 1s of estimated wait)
    // builds real pressure and walks the brownout ladder before the
    // infeasibility check starts refusing arrivals.
    let deadline = 1.0;
    let model = ModelConfig::qwen2_1_5b();
    // Default HRCS alpha: the Zipf head is replicated (hedge material once
    // worker 0 goes cold) while the sharded tail's owner-1 pulls cross the
    // slowed link (backoff material).
    let cluster = ClusterConfig::a100_4node();
    let ds = DatasetConfig::books();

    let trace = burst_trace(&ds, segment, rate, deadline);
    let burst_window = (segment, 2.0 * segment);
    let slow_until = 2.5 * segment;
    println!(
        "{} requests over {:.0}s on 4 workers; 3x burst in [{:.0}s, {:.0}s), deadline {deadline}s",
        trace.len(),
        3.0 * segment,
        burst_window.0,
        burst_window.1,
    );
    println!(
        "faulted run adds: worker 1 at 5x service slowdown, link 0–1 at 150x through [{:.0}s, {:.0}s), worker 0 crash/rejoin at {:.0}s/{:.0}s",
        burst_window.0,
        slow_until,
        2.05 * segment,
        2.1 * segment,
    );

    let base = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds)
        .with_slo(Some(OverloadConfig::default()));
    let healthy_cfg = EngineConfig {
        label: "BAT (no fault)".to_owned(),
        ..base.clone()
    };
    let faulted_cfg = EngineConfig {
        label: "BAT (straggler + slow link)".to_owned(),
        ..base
    }
    .with_straggler(Some((1, 5.0)))
    .with_faults(Some(
        FaultSchedule::new(4, fault_events(burst_window.0, slow_until, segment))
            .expect("valid schedule"),
    ));

    let healthy = run(healthy_cfg, &trace);
    let faulted = run(faulted_cfg, &trace);
    let s = &faulted.slo;
    let h = &healthy.slo;
    let r = &faulted.faults;

    let rows = vec![
        vec![
            "submitted".to_owned(),
            s.submitted.to_string(),
            h.submitted.to_string(),
        ],
        vec![
            "accepted".to_owned(),
            s.accepted.to_string(),
            h.accepted.to_string(),
        ],
        vec![
            "rejected: queue full".to_owned(),
            s.rejected_queue_full.to_string(),
            h.rejected_queue_full.to_string(),
        ],
        vec![
            "rejected: deadline infeasible".to_owned(),
            s.rejected_infeasible.to_string(),
            h.rejected_infeasible.to_string(),
        ],
        vec![
            "rejected: brownout shed".to_owned(),
            s.rejected_brownout.to_string(),
            h.rejected_brownout.to_string(),
        ],
        vec![
            "shed after admission (expired)".to_owned(),
            s.shed_expired.to_string(),
            h.shed_expired.to_string(),
        ],
        vec![
            "completed".to_owned(),
            s.completed.to_string(),
            h.completed.to_string(),
        ],
        vec![
            "deadline misses".to_owned(),
            s.deadline_misses.to_string(),
            h.deadline_misses.to_string(),
        ],
        vec![
            "goodput (in-deadline)".to_owned(),
            s.goodput().to_string(),
            h.goodput().to_string(),
        ],
        vec![
            "goodput ratio".to_owned(),
            f3(s.goodput_ratio()),
            f3(h.goodput_ratio()),
        ],
        vec![
            "P90 latency (ms)".to_owned(),
            f1(faulted.p90_latency_ms),
            f1(healthy.p90_latency_ms),
        ],
    ];
    println!("\nAdmission / goodput ledger:");
    print_table(&["Metric", "faulted", "no fault"], &rows);

    let mech = vec![
        vec![
            "max brownout rung".to_owned(),
            r.max_brownout_rung.to_string(),
        ],
        vec![
            "rung transitions".to_owned(),
            r.brownout_transitions.to_string(),
        ],
        vec![
            "suspended refreshes (rung 1)".to_owned(),
            r.suspended_refreshes.to_string(),
        ],
        vec![
            "brownout recomputes (rung 2)".to_owned(),
            r.brownout_recomputes.to_string(),
        ],
        vec!["slow links applied".to_owned(), r.slow_links.to_string()],
        vec!["hedged pulls".to_owned(), r.hedged_pulls.to_string()],
        vec!["hedge wins".to_owned(), r.hedge_wins.to_string()],
        vec!["backoff retries".to_owned(), r.backoff_retries.to_string()],
    ];
    println!("\nControl-plane mechanisms (faulted run):");
    print_table(&["Mechanism", "count"], &mech);

    let conserved = s.conserved() && h.conserved();
    let goodput_ratio_vs_healthy = if h.goodput() == 0 {
        1.0
    } else {
        s.goodput() as f64 / h.goodput() as f64
    };
    let holds = goodput_ratio_vs_healthy >= 0.85;
    println!(
        "\nconservation (submitted == completed + shed + rejected): {} | goodput vs no-fault: {} (gate ≥ 0.85: {})",
        if conserved { "yes" } else { "NO" },
        f3(goodput_ratio_vs_healthy),
        if holds { "yes" } else { "NO" },
    );

    write_artifact(
        "ablation_overload.json",
        &serde_json::json!({
            "segment_secs": segment,
            "rate": rate,
            "deadline_secs": deadline,
            "requests": trace.len(),
            "healthy_slo": h,
            "faulted_slo": s,
            "fault_report": r,
            "healthy_p90_ms": healthy.p90_latency_ms,
            "faulted_p90_ms": faulted.p90_latency_ms,
            "goodput_vs_healthy": goodput_ratio_vs_healthy,
            "conserved": conserved,
            "gate_85pct": holds,
        }),
    );
    if !(conserved && holds) {
        std::process::exit(1);
    }
}
