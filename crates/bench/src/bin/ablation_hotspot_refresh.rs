//! Burst-hotspot refresh ablation (§5.2 Step 3).
//!
//! The paper's placement is computed offline from past access frequencies,
//! then maintained by a background process: "there are some burst hotspots
//! that should be recommended to most users. We update these items in the
//! replicate area."
//!
//! This harness injects a popularity shift mid-trace (the hot head rotates
//! to a previously cold band of the corpus) on a slow 10 Gbps network, and
//! compares
//!
//! * **static HRCS** — the offline plan, never refreshed: the new hot items
//!   live on shards, so most item reads turn remote;
//! * **HRCS + background refresh** — item hotness tracked online, the
//!   replicated area re-populated every minute: network overhead recovers.

use bat::experiment::saturation_offered_rate;
use bat::{ClusterConfig, DatasetConfig, EngineConfig, ModelConfig, ServingEngine, SystemKind};
use bat_bench::{f1, f3, print_table, write_artifact, HarnessArgs};
use bat_workload::{TraceGenerator, Workload};

fn main() {
    let args = HarnessArgs::parse();
    let duration = args.scale(1200.0, 120.0);
    let model = ModelConfig::qwen2_1_5b();
    let mut cluster = ClusterConfig::a100_4node();
    cluster.node = cluster.node.with_network_gbps(10.0);
    let ds = DatasetConfig::books();
    let rate = saturation_offered_rate(&model, &cluster, &ds, 3.0);

    // Popularity shifts a quarter of the way in: ranks rotate halfway
    // around the corpus, so the offline hot head goes cold.
    let shift_at = duration / 4.0;
    let workload = Workload::new(ds.clone(), 77).with_hotspot_shift(shift_at, ds.num_items / 2);
    let mut gen = TraceGenerator::new(workload, 78);
    let trace = gen.generate(duration, rate);
    println!(
        "Hotspot shift at t={shift_at:.0}s of {duration:.0}s ({} requests, 10Gbps network)",
        trace.len()
    );

    let base = EngineConfig::for_system(SystemKind::Bat, model, cluster, &ds);
    let variants = [
        ("static HRCS (offline plan)", None),
        ("HRCS + 60s background refresh", Some(60.0)),
    ];
    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for (label, refresh) in variants {
        let cfg = EngineConfig {
            label: label.to_owned(),
            track_item_hotness: refresh.is_some(),
            item_refresh_interval_secs: refresh,
            ..base.clone()
        };
        let mut engine = ServingEngine::new(cfg).expect("config valid");
        let stats = engine.run(&trace);
        rows.push(vec![
            label.to_owned(),
            f1(stats.qps()),
            f3(stats.hit_rate()),
            f3(stats.net_over_compute()),
            format!("{}", stats.remote_bytes),
        ]);
        artifact.push(serde_json::json!({
            "variant": label, "qps": stats.qps(), "hit_rate": stats.hit_rate(),
            "net_over_compute": stats.net_over_compute(),
            "remote_bytes": stats.remote_bytes.as_u64(),
        }));
    }
    print_table(
        &["Variant", "QPS", "HitRate", "Net/Compute", "Remote bytes"],
        &rows,
    );
    println!("\n(the refresh re-replicates the observed hot head, pulling item reads");
    println!(" back to local memory after the popularity shift)");
    write_artifact("ablation_hotspot_refresh.json", &artifact);
}
