//! Shared plumbing for the figure/table regeneration harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index): it prints the same rows/series the
//! paper reports and writes a JSON artifact next to `EXPERIMENTS.md` under
//! `results/`.
//!
//! All harnesses accept a `--quick` flag that shrinks trace durations for
//! smoke runs and a `--threads N` flag that sizes the [`bat_exec`] pool;
//! published numbers in EXPERIMENTS.md use the default scale.

pub mod perf;

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Parsed common CLI flags.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Shrink experiment scale for a fast smoke run.
    pub quick: bool,
    /// Worker-thread override (`--threads N`); `None` leaves the
    /// `BAT_THREADS` / hardware default in place.
    pub threads: Option<usize>,
}

impl HarnessArgs {
    /// Parses `std::env::args` and applies `--threads` to the global
    /// [`bat_exec`] pool. Unknown flags are ignored (criterion et al.
    /// pass their own).
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let args = Self::from_args(&argv);
        if let Some(n) = args.threads {
            bat_exec::set_threads(n);
        }
        args
    }

    /// Parses an explicit argument list without touching the pool.
    pub fn from_args(argv: &[String]) -> Self {
        let quick = argv.iter().any(|a| a == "--quick");
        let threads = argv
            .iter()
            .position(|a| a == "--threads")
            .and_then(|i| argv.get(i + 1))
            .and_then(|v| v.parse().ok());
        HarnessArgs { quick, threads }
    }

    /// Picks between the full-scale and quick values.
    pub fn scale<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Directory where JSON artifacts land (`<repo>/results`).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a JSON artifact and reports the path on stdout.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    fs::write(&path, json).expect("write artifact");
    println!("\n[artifact] {}", path.display());
}

/// Prints a Markdown-style table: header row then aligned value rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_args_default_full_scale() {
        let args = HarnessArgs {
            quick: false,
            threads: None,
        };
        assert_eq!(args.scale(100, 10), 100);
        let quick = HarnessArgs {
            quick: true,
            threads: None,
        };
        assert_eq!(quick.scale(100, 10), 10);
    }

    #[test]
    fn harness_args_parse_threads_flag() {
        let argv: Vec<String> = ["bin", "--quick", "--threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = HarnessArgs::from_args(&argv);
        assert!(args.quick);
        assert_eq!(args.threads, Some(4));
        // Missing or malformed values degrade to None rather than panicking.
        let argv: Vec<String> = ["bin", "--threads"].iter().map(|s| s.to_string()).collect();
        assert_eq!(HarnessArgs::from_args(&argv).threads, None);
        let argv: Vec<String> = ["bin", "--threads", "lots"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(HarnessArgs::from_args(&argv).threads, None);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f1(12.34), "12.3");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
