//! Algorithm 1: HRCS replication-ratio computation.
//!
//! The algorithm bounds the fraction of item-KV bytes a request may pull
//! over the network: communication time must stay below `α` of the
//! request's prefill time. With `B` the network bandwidth in tokens/second,
//! `t` the estimated prefill time, `c` candidates of `S_item` tokens each,
//! and `N` cache workers (a remote fetch is needed for the `(N−1)/N` of
//! sharded items living elsewhere), the maximum tolerable *remote* fraction
//! is
//!
//! `R_max = α · t · B · (N−1) / (c · S_item · N)`,
//!
//! and the replication ratio `r` is the smallest head fraction of the item
//! popularity CDF whose mass reaches `1 − R_max` — so that at most `R_max`
//! of accesses fall on sharded (possibly remote) items.

use bat_workload::ZipfLaw;
use serde::{Deserialize, Serialize};

/// Inputs of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HrcsParams {
    /// Measured network bandwidth converted to tokens/second (`B`).
    pub bandwidth_tokens_per_sec: f64,
    /// Estimated prefill time of one request, seconds (`t`, from the
    /// offline polynomial/analytic cost model).
    pub prefill_time_secs: f64,
    /// Communication-over-computation tolerance (`α`).
    pub alpha: f64,
    /// Candidate items per request (`c`).
    pub candidates_per_request: u32,
    /// Average item token count (`S_item = τ_i`).
    pub avg_item_tokens: f64,
    /// Number of KV cache workers (`N`).
    pub num_workers: usize,
}

impl HrcsParams {
    /// The maximum allowed remote-access ratio `R_max`, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive (a single worker is allowed:
    /// `R_max` is then unbounded and replication unnecessary).
    pub fn max_remote_ratio(&self) -> f64 {
        assert!(
            self.bandwidth_tokens_per_sec > 0.0,
            "bandwidth must be positive"
        );
        assert!(
            self.prefill_time_secs > 0.0,
            "prefill time must be positive"
        );
        assert!(self.alpha > 0.0, "alpha must be positive");
        assert!(
            self.candidates_per_request > 0,
            "candidates must be positive"
        );
        assert!(self.avg_item_tokens > 0.0, "item tokens must be positive");
        assert!(self.num_workers > 0, "need at least one worker");
        if self.num_workers == 1 {
            // All items are local; nothing ever crosses the network.
            return 1.0;
        }
        let n = self.num_workers as f64;
        let r = self.alpha * self.prefill_time_secs * self.bandwidth_tokens_per_sec * (n - 1.0)
            / (self.candidates_per_request as f64 * self.avg_item_tokens * n);
        r.clamp(0.0, 1.0)
    }
}

/// Runs Algorithm 1 against an item-popularity law, returning the
/// replication ratio `r ∈ [0, 1]`: the head fraction of items (by
/// popularity rank) replicated on every worker.
pub fn compute_replication_ratio(params: &HrcsParams, popularity: &ZipfLaw) -> f64 {
    let r_max = params.max_remote_ratio();
    if r_max >= 1.0 {
        // Even an all-sharded layout meets the communication budget.
        return 0.0;
    }
    let target_mass = 1.0 - r_max;
    let head = popularity.ranks_for_mass(target_mass);
    head as f64 / popularity.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HrcsParams {
        HrcsParams {
            // 100Gbps ≈ 12.5 GB/s over 28672-byte tokens ≈ 436k tokens/s.
            bandwidth_tokens_per_sec: 12.5e9 / 28672.0,
            prefill_time_secs: 0.050,
            alpha: 0.05,
            candidates_per_request: 100,
            avg_item_tokens: 10.0,
            num_workers: 4,
        }
    }

    #[test]
    fn r_max_matches_closed_form() {
        let p = params();
        let expect: f64 = 0.05 * 0.050 * (12.5e9 / 28672.0) * 3.0 / (100.0 * 10.0 * 4.0);
        assert!((p.max_remote_ratio() - expect.clamp(0.0, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn single_worker_needs_no_replication() {
        let mut p = params();
        p.num_workers = 1;
        assert_eq!(p.max_remote_ratio(), 1.0);
        let law = ZipfLaw::new(1_000_000, 1.05);
        assert_eq!(compute_replication_ratio(&p, &law), 0.0);
    }

    #[test]
    fn skew_keeps_replication_small() {
        // With Figure 2d's skew, covering ~80% of accesses needs only a few
        // percent of items replicated.
        let p = params();
        let law = ZipfLaw::new(1_000_000, 1.05);
        let r = compute_replication_ratio(&p, &law);
        assert!(r > 0.0, "some replication needed under a 100Gbps budget");
        assert!(
            r < 0.5,
            "skew should keep the replicated set small, got {r}"
        );
        // The replicated head must actually cover the required mass.
        let covered = law.head_mass((r * law.n() as f64) as u64);
        assert!(covered >= 1.0 - p.max_remote_ratio() - 1e-6);
    }

    #[test]
    fn slower_network_replicates_more() {
        let fast = params();
        let mut slow = params();
        slow.bandwidth_tokens_per_sec /= 10.0; // 10Gbps
        let law = ZipfLaw::new(1_000_000, 1.05);
        let r_fast = compute_replication_ratio(&fast, &law);
        let r_slow = compute_replication_ratio(&slow, &law);
        assert!(
            r_slow >= r_fast,
            "10Gbps ({r_slow}) must replicate at least as much as 100Gbps ({r_fast})"
        );
    }

    #[test]
    fn generous_budget_means_full_sharding() {
        let mut p = params();
        p.alpha = 10.0; // absurdly tolerant
        let law = ZipfLaw::new(10_000, 1.0);
        assert_eq!(compute_replication_ratio(&p, &law), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn invalid_params_rejected() {
        let mut p = params();
        p.bandwidth_tokens_per_sec = 0.0;
        let _ = p.max_remote_ratio();
    }
}
