//! Materialized item placement: memory accounting + location oracle.
//!
//! A plan fixes, for every item (identified by popularity rank = ID), where
//! its KV entry lives: replicated on every worker, on its shard owner, or
//! not cached at all (the Figure 10 regime, where a 100M-item corpus
//! exceeds the pooled memory and only the hottest ~10% are cached).

use bat_types::{Bytes, ItemId, WorkerId};
use serde::{Deserialize, Serialize};

/// Placement strategy (§5.2, Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Hot-replicated cold-sharded (Algorithm 1).
    Hrcs,
    /// BAT-Replicate: full item cache on every machine.
    Replicate,
    /// BAT-Hash: items sharded 1/N per machine, no replication.
    HashShard,
}

/// Where an item's KV entry is, relative to a given worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemLocation {
    /// In this worker's replicated region: zero-cost local read.
    LocalReplica,
    /// This worker owns the item's shard: local read.
    LocalShard,
    /// Another worker owns the shard: network transfer required.
    Remote(WorkerId),
    /// Not cached anywhere: the item's tokens must be recomputed.
    Uncached,
}

impl ItemLocation {
    /// Whether the entry can be read without touching the network.
    pub fn is_local(self) -> bool {
        matches!(self, ItemLocation::LocalReplica | ItemLocation::LocalShard)
    }
}

/// A materialized placement over `num_items` items and `num_workers`
/// workers. Items with ID `< replicated_items` are replicated; items with
/// ID in `[replicated_items, cached_items)` are sharded round-robin; items
/// with ID `≥ cached_items` are uncached.
///
/// ```
/// use bat_placement::{ItemLocation, ItemPlacementPlan, PlacementStrategy};
/// use bat_types::{ItemId, WorkerId};
///
/// // 10% of a 1M corpus replicated, the rest sharded over 4 workers.
/// let plan = ItemPlacementPlan::new(
///     PlacementStrategy::Hrcs, 1_000_000, 4, 0.1, 28_672 * 10);
/// assert_eq!(
///     plan.locate(ItemId::new(42), WorkerId::new(2)),
///     ItemLocation::LocalReplica
/// );
/// assert!(matches!(
///     plan.locate(ItemId::new(900_000), WorkerId::new(2)),
///     ItemLocation::LocalShard | ItemLocation::Remote(_)
/// ));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemPlacementPlan {
    strategy: PlacementStrategy,
    num_items: u64,
    num_workers: usize,
    replicated_items: u64,
    cached_items: u64,
    avg_item_kv_bytes: u64,
    /// Background-refresh override (§5.2 Step 3): when set, *these* item
    /// IDs occupy the replicated area instead of the rank prefix
    /// `0..replicated_items`. Sharding of everything else is unchanged.
    #[serde(default)]
    replicated_override: Option<std::collections::HashSet<u64>>,
}

impl ItemPlacementPlan {
    /// Builds a plan.
    ///
    /// * `replication_ratio` — fraction of (cached) items replicated
    ///   everywhere: 0.0 for [`PlacementStrategy::HashShard`], 1.0 for
    ///   [`PlacementStrategy::Replicate`], Algorithm 1's `r` for HRCS.
    /// * `avg_item_kv_bytes` — mean per-item KV entry size, for memory
    ///   accounting.
    ///
    /// # Panics
    ///
    /// Panics if there are no workers, or the ratio is outside `[0, 1]`.
    pub fn new(
        strategy: PlacementStrategy,
        num_items: u64,
        num_workers: usize,
        replication_ratio: f64,
        avg_item_kv_bytes: u64,
    ) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        assert!(
            (0.0..=1.0).contains(&replication_ratio),
            "replication ratio must be in [0, 1]"
        );
        let replicated_items = match strategy {
            PlacementStrategy::Replicate => num_items,
            PlacementStrategy::HashShard => 0,
            PlacementStrategy::Hrcs => (replication_ratio * num_items as f64).round() as u64,
        };
        ItemPlacementPlan {
            strategy,
            num_items,
            num_workers,
            replicated_items: replicated_items.min(num_items),
            cached_items: num_items,
            avg_item_kv_bytes,
            replicated_override: None,
        }
    }

    /// Replaces the *membership* of the replicated area with `ids` — the
    /// paper's background hot-item refresh (§5.2 Step 3: "we update these
    /// items in the replicate area"). The area's capacity is unchanged;
    /// at most `replicated_items()` IDs are kept (hottest-first order of
    /// the iterator).
    pub fn refresh_replicated(&mut self, ids: impl IntoIterator<Item = ItemId>) {
        let cap = self.replicated_items as usize;
        let set: std::collections::HashSet<u64> =
            ids.into_iter().take(cap).map(|i| i.as_u64()).collect();
        self.replicated_override = Some(set);
    }

    /// Whether a background refresh has replaced the default (rank-prefix)
    /// replicated membership.
    pub fn has_refresh_override(&self) -> bool {
        self.replicated_override.is_some()
    }

    /// The strategy this plan realizes.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Workers the plan shards over.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Mean per-item KV entry size used for memory accounting.
    pub fn avg_item_kv_bytes(&self) -> u64 {
        self.avg_item_kv_bytes
    }

    /// Whether `item` currently occupies the replicated area (respecting a
    /// background-refresh override).
    pub fn is_replicated(&self, item: ItemId) -> bool {
        let id = item.as_u64();
        match &self.replicated_override {
            Some(set) => set.contains(&id),
            None => id < self.replicated_items,
        }
    }

    /// Total items in the corpus.
    pub fn num_items(&self) -> u64 {
        self.num_items
    }

    /// Items replicated on every worker.
    pub fn replicated_items(&self) -> u64 {
        self.replicated_items
    }

    /// Items whose KV entry exists somewhere in the pool.
    pub fn cached_items(&self) -> u64 {
        self.cached_items
    }

    /// Effective replication ratio over the corpus.
    pub fn replication_ratio(&self) -> f64 {
        if self.num_items == 0 {
            0.0
        } else {
            self.replicated_items as f64 / self.num_items as f64
        }
    }

    /// Caps the plan to a per-worker item-region capacity (Figure 10: a
    /// 100M-item corpus cannot be fully cached).
    ///
    /// Corpus coverage is worth more than replication (an uncached item is
    /// recomputed on *every* request; a sharded one is at worst a network
    /// hop), so the cap first shrinks the replicated region until the whole
    /// corpus fits sharded; only if even full sharding overflows does the
    /// cold tail get dropped.
    pub fn fit_to_capacity(mut self, per_worker: Bytes) -> Self {
        let cap = per_worker.as_u64();
        let per_item = self.avg_item_kv_bytes.max(1);
        let cap_items = cap / per_item; // per-worker item slots
        let n = self.num_items;
        let w = self.num_workers as u64;
        // Per-worker slots used by a plan (repl, cached):
        //   repl + ceil((cached − repl) / w)
        let shard_per_worker = |repl: u64, cached: u64| (cached - repl).div_ceil(w);
        if self.replicated_items + shard_per_worker(self.replicated_items, self.cached_items)
            <= cap_items
        {
            return self;
        }
        // Try to keep the full corpus: solve repl so that
        // repl + (n − repl)/w ≤ cap_items.
        if n.div_ceil(w) <= cap_items {
            let mut repl = self.replicated_items.min(cap_items);
            while repl > 0 && repl + shard_per_worker(repl, n) > cap_items {
                // Each replicated item released frees (1 − 1/w) slots; jump
                // by the remaining overflow.
                let overflow = repl + shard_per_worker(repl, n) - cap_items;
                let step = (overflow * w).div_ceil(w.saturating_sub(1).max(1));
                repl = repl.saturating_sub(step.max(1));
            }
            self.replicated_items = repl;
            self.cached_items = n;
            return self;
        }
        // Even r = 0 overflows: shard everything and drop the cold tail.
        self.replicated_items = self.replicated_items.min(cap_items);
        let remaining = cap_items - self.replicated_items;
        self.cached_items = (self.replicated_items + remaining * w).min(n);
        self
    }

    /// Per-worker bytes consumed by the item region.
    pub fn per_worker_bytes(&self) -> Bytes {
        let sharded = self.cached_items - self.replicated_items;
        let shard_per_worker = sharded.div_ceil(self.num_workers as u64);
        Bytes::new((self.replicated_items + shard_per_worker) * self.avg_item_kv_bytes)
    }

    /// Fraction of item *accesses* served from the cache, under `law`.
    pub fn cached_access_mass(&self, law: &bat_workload::ZipfLaw) -> f64 {
        law.head_mass(self.cached_items.min(law.n()))
    }

    /// Locates `item` relative to `local` (the worker co-located with the
    /// inference worker handling the request).
    ///
    /// # Panics
    ///
    /// Panics if `local` is not a valid worker index.
    pub fn locate(&self, item: ItemId, local: WorkerId) -> ItemLocation {
        assert!(
            (local.as_u64() as usize) < self.num_workers,
            "worker index out of range"
        );
        let id = item.as_u64();
        let replicated = match &self.replicated_override {
            Some(set) => set.contains(&id),
            None => id < self.replicated_items,
        };
        if replicated {
            return ItemLocation::LocalReplica;
        }
        if id >= self.cached_items {
            return ItemLocation::Uncached;
        }
        let owner = WorkerId::new(id % self.num_workers as u64);
        if owner == local {
            ItemLocation::LocalShard
        } else {
            ItemLocation::Remote(owner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bat_workload::ZipfLaw;
    use proptest::prelude::*;

    const KV: u64 = 28_672 * 10; // Qwen2-1.5B, 10-token items

    #[test]
    fn replicate_is_always_local() {
        let plan = ItemPlacementPlan::new(PlacementStrategy::Replicate, 1000, 4, 0.0, KV);
        for id in [0u64, 500, 999] {
            assert_eq!(
                plan.locate(ItemId::new(id), WorkerId::new(2)),
                ItemLocation::LocalReplica
            );
        }
        assert_eq!(plan.per_worker_bytes(), Bytes::new(1000 * KV));
    }

    #[test]
    fn hash_shard_spreads_and_pays_network() {
        let plan = ItemPlacementPlan::new(PlacementStrategy::HashShard, 1000, 4, 0.0, KV);
        let local = WorkerId::new(1);
        let mut remote = 0;
        for id in 0..1000u64 {
            match plan.locate(ItemId::new(id), local) {
                ItemLocation::LocalShard => assert_eq!(id % 4, 1),
                ItemLocation::Remote(w) => {
                    assert_eq!(w.as_u64(), id % 4);
                    remote += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(remote, 750, "3/4 of items are remote");
        // 1/4 of the bytes per worker.
        assert_eq!(plan.per_worker_bytes(), Bytes::new(250 * KV));
    }

    #[test]
    fn hrcs_mixes_replication_and_sharding() {
        let plan = ItemPlacementPlan::new(PlacementStrategy::Hrcs, 1000, 4, 0.1, KV);
        assert_eq!(plan.replicated_items(), 100);
        assert_eq!(
            plan.locate(ItemId::new(50), WorkerId::new(3)),
            ItemLocation::LocalReplica
        );
        assert!(matches!(
            plan.locate(ItemId::new(500), WorkerId::new(3)),
            ItemLocation::LocalShard | ItemLocation::Remote(_)
        ));
        // 100 replicated + 225 sharded per worker.
        assert_eq!(plan.per_worker_bytes(), Bytes::new((100 + 225) * KV));
    }

    #[test]
    fn capacity_cap_drops_the_cold_tail() {
        // 100M items (Figure 10) cannot fit: expect a cached head only.
        let plan = ItemPlacementPlan::new(PlacementStrategy::Hrcs, 100_000_000, 16, 0.001, KV)
            .fit_to_capacity(Bytes::from_gb(200));
        assert!(plan.cached_items() < plan.num_items());
        assert!(plan.replicated_items() <= plan.cached_items());
        assert_eq!(
            plan.locate(ItemId::new(99_999_999), WorkerId::new(0)),
            ItemLocation::Uncached
        );
        // Per-worker footprint respects the cap (within one item of rounding).
        assert!(plan.per_worker_bytes().as_u64() <= Bytes::from_gb(200).as_u64() + KV);
        // Skew means the cached head still covers most accesses.
        let law = ZipfLaw::new(100_000_000, 1.05);
        assert!(plan.cached_access_mass(&law) > 0.5);
    }

    #[test]
    fn location_is_consistent_across_workers() {
        let plan = ItemPlacementPlan::new(PlacementStrategy::Hrcs, 100, 4, 0.2, KV);
        for id in 0..100u64 {
            let item = ItemId::new(id);
            let mut local_count = 0;
            for w in 0..4u64 {
                if plan.locate(item, WorkerId::new(w)).is_local() {
                    local_count += 1;
                }
            }
            if id < plan.replicated_items() {
                assert_eq!(local_count, 4, "replicated item local everywhere");
            } else {
                assert_eq!(local_count, 1, "sharded item has exactly one owner");
            }
        }
    }

    #[test]
    fn refresh_override_changes_replica_membership() {
        let mut plan = ItemPlacementPlan::new(PlacementStrategy::Hrcs, 100, 4, 0.1, KV);
        assert_eq!(
            plan.locate(ItemId::new(5), WorkerId::new(0)),
            ItemLocation::LocalReplica
        );
        // A burst hotspot: items 90..100 replace the rank head.
        plan.refresh_replicated((90..100).map(ItemId::new));
        assert!(plan.has_refresh_override());
        assert_eq!(
            plan.locate(ItemId::new(95), WorkerId::new(0)),
            ItemLocation::LocalReplica
        );
        assert!(
            !matches!(
                plan.locate(ItemId::new(5), WorkerId::new(0)),
                ItemLocation::LocalReplica
            ),
            "old head falls back to its shard"
        );
        // The area's capacity bounds the override.
        plan.refresh_replicated((0..50).map(ItemId::new));
        let replicated = (0..100u64)
            .filter(|&i| {
                plan.locate(ItemId::new(i), WorkerId::new(0)) == ItemLocation::LocalReplica
            })
            .count() as u64;
        assert_eq!(replicated, plan.replicated_items());
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn locate_validates_worker() {
        let plan = ItemPlacementPlan::new(PlacementStrategy::Replicate, 10, 2, 0.0, KV);
        let _ = plan.locate(ItemId::new(0), WorkerId::new(5));
    }

    proptest! {
        /// Every cached item is local to exactly its owners; per-worker bytes
        /// are monotone in the replication ratio.
        #[test]
        fn bytes_monotone_in_replication(n in 1u64..10_000, workers in 1usize..16, r1 in 0.0f64..1.0, r2 in 0.0f64..1.0) {
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            let a = ItemPlacementPlan::new(PlacementStrategy::Hrcs, n, workers, lo, KV);
            let b = ItemPlacementPlan::new(PlacementStrategy::Hrcs, n, workers, hi, KV);
            prop_assert!(a.per_worker_bytes() <= b.per_worker_bytes());
        }
    }
}
