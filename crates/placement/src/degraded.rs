//! Membership-aware re-plan of an item placement (fault recovery).
//!
//! When a cache worker crashes, the base [`ItemPlacementPlan`] is wrong in
//! two ways: the dead worker's shard entries are gone, and its replicas no
//! longer count. [`DegradedPlacement`] recomputes, for a live-membership
//! bitmap, where every item can still be served from:
//!
//! * replicated items survive on every live worker;
//! * shards owned by live workers are untouched (sharding never moves for
//!   survivors — moving warm entries would churn the whole pool);
//! * the hottest entries of each dead shard are *adopted* by live workers,
//!   bounded by their spare item-region capacity (an adopted entry starts
//!   cold and is re-warmed on first access);
//! * whatever does not fit is marked recompute-only until the owner
//!   returns.
//!
//! The adoption budget is conservative: every live worker receives at most
//! `min_spare` items (the smallest spare capacity across live workers), so
//! the re-plan can never overflow any worker, whatever the membership
//! sequence — the invariant the fault-recovery property tests pin down.

use crate::plan::ItemPlacementPlan;
use bat_types::{Bytes, ItemId, WorkerId};

/// Where an item can be served from under degraded membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedLocation {
    /// In the replicated area: every live worker holds a copy.
    Replica,
    /// On its base-plan shard owner, which is alive.
    Shard(WorkerId),
    /// Base owner is dead; this live worker adopted the entry. Adopted
    /// entries start cold: the first access recomputes and writes back.
    Adopted(WorkerId),
    /// Not reachable under the current membership: recompute every access.
    RecomputeOnly,
}

impl DegradedLocation {
    /// The live worker that can serve the entry, if any.
    pub fn worker(self) -> Option<WorkerId> {
        match self {
            DegradedLocation::Shard(w) | DegradedLocation::Adopted(w) => Some(w),
            _ => None,
        }
    }
}

/// A capacity-bounded re-plan of an [`ItemPlacementPlan`] for a live
/// membership.
///
/// ```
/// use bat_placement::{DegradedLocation, DegradedPlacement, ItemPlacementPlan, PlacementStrategy};
/// use bat_types::{Bytes, ItemId, WorkerId};
///
/// let plan = ItemPlacementPlan::new(PlacementStrategy::Hrcs, 1000, 4, 0.1, 1 << 20);
/// // Worker 1 died; give each worker a little headroom above the base load.
/// let degraded = DegradedPlacement::new(&plan, &[true, false, true, true], Bytes::from_gb(1));
/// assert_eq!(degraded.locate(ItemId::new(5)), DegradedLocation::Replica);
/// // Item 401 is owned by the dead worker 1: adopted or recompute-only.
/// assert!(matches!(
///     degraded.locate(ItemId::new(401)),
///     DegradedLocation::Adopted(_) | DegradedLocation::RecomputeOnly
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct DegradedPlacement {
    base: ItemPlacementPlan,
    alive: Vec<bool>,
    live: Vec<WorkerId>,
    /// Per-worker adoption cut-off: for a dead worker `d`, its shard items
    /// with in-class rank `id / num_workers < adopt_limit[d]` are adopted.
    adopt_limit: Vec<u64>,
    capacity_items: u64,
}

impl DegradedPlacement {
    /// Re-plans `base` for the live membership `alive` (index = worker),
    /// with `per_worker_budget` bytes of item-region capacity per worker.
    ///
    /// # Panics
    ///
    /// Panics if `alive` does not match the plan's worker count or no
    /// worker is alive.
    pub fn new(base: &ItemPlacementPlan, alive: &[bool], per_worker_budget: Bytes) -> Self {
        assert_eq!(
            alive.len(),
            base.num_workers(),
            "membership bitmap must cover every worker"
        );
        let live: Vec<WorkerId> = alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| WorkerId::new(i as u64))
            .collect();
        assert!(!live.is_empty(), "at least one worker must be alive");
        let w = base.num_workers() as u64;
        let capacity_items = per_worker_budget.as_u64() / base.avg_item_kv_bytes().max(1);
        // Base load per worker under the nominal rank-prefix layout (a
        // refresh override permutes membership, not counts).
        let sharded = base.cached_items() - base.replicated_items();
        let base_load = base.replicated_items() + sharded.div_ceil(w);
        let min_spare = capacity_items.saturating_sub(base_load);
        let n_dead = (alive.len() - live.len()) as u64;
        // Split the spare budget evenly across dead shards; each live worker
        // then receives at most `min_spare` adopted entries in total.
        let per_dead = min_spare
            .checked_div(n_dead)
            .map_or(0, |share| share * live.len() as u64);
        let adopt_limit = alive
            .iter()
            .map(|&a| {
                if a {
                    0
                } else {
                    per_dead.div_ceil(live.len() as u64)
                }
            })
            .collect();
        DegradedPlacement {
            base: base.clone(),
            alive: alive.to_vec(),
            live,
            adopt_limit,
            capacity_items,
        }
    }

    /// The live-membership bitmap this plan was built for.
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// Live workers, ascending.
    pub fn live_workers(&self) -> &[WorkerId] {
        &self.live
    }

    /// Per-worker item-slot capacity the re-plan respects.
    pub fn capacity_items(&self) -> u64 {
        self.capacity_items
    }

    /// Locates `item` under the degraded membership.
    pub fn locate(&self, item: ItemId) -> DegradedLocation {
        let id = item.as_u64();
        if id >= self.base.cached_items() {
            return DegradedLocation::RecomputeOnly;
        }
        if self.base.is_replicated(item) {
            return DegradedLocation::Replica;
        }
        let w = self.base.num_workers() as u64;
        let owner = (id % w) as usize;
        if self.alive[owner] {
            return DegradedLocation::Shard(WorkerId::new(owner as u64));
        }
        // Dead owner: adopt the hottest entries of its shard (rank order =
        // popularity order), spread round-robin over the live workers.
        let rank_in_class = id / w;
        if rank_in_class < self.adopt_limit[owner] {
            let n_live = self.live.len() as u64;
            let target = self.live[((rank_in_class + owner as u64) % n_live) as usize];
            DegradedLocation::Adopted(target)
        } else {
            DegradedLocation::RecomputeOnly
        }
    }

    /// Exact per-worker item count under this re-plan (replicas, own
    /// shard, and adopted entries). `O(num_items)` — intended for tests
    /// and tools, never the serving path.
    pub fn assigned_items(&self, worker: WorkerId) -> u64 {
        assert!(
            self.alive[worker.index()],
            "{worker} is dead — it holds nothing"
        );
        let mut count = 0u64;
        for id in 0..self.base.num_items() {
            match self.locate(ItemId::new(id)) {
                DegradedLocation::Replica => count += 1,
                DegradedLocation::Shard(w) | DegradedLocation::Adopted(w) if w == worker => {
                    count += 1;
                }
                _ => {}
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlacementStrategy;

    const KV: u64 = 1 << 20;

    fn base(n: u64, workers: usize, r: f64) -> ItemPlacementPlan {
        ItemPlacementPlan::new(PlacementStrategy::Hrcs, n, workers, r, KV)
    }

    #[test]
    fn full_membership_changes_nothing() {
        let plan = base(1000, 4, 0.1);
        let d = DegradedPlacement::new(&plan, &[true; 4], Bytes::new(1000 * KV));
        assert_eq!(d.locate(ItemId::new(5)), DegradedLocation::Replica);
        assert_eq!(
            d.locate(ItemId::new(500)),
            DegradedLocation::Shard(WorkerId::new(0))
        );
        assert_eq!(d.locate(ItemId::new(2000)), DegradedLocation::RecomputeOnly);
    }

    #[test]
    fn dead_shard_is_adopted_hottest_first_within_capacity() {
        let plan = base(1000, 4, 0.1);
        // Base load: 100 replicated + 225 sharded = 325; budget 400 slots
        // leaves 75 spare per worker.
        let d = DegradedPlacement::new(&plan, &[true, false, true, true], Bytes::new(400 * KV));
        let mut adopted = 0;
        let mut recompute = 0;
        for id in (0..1000u64).filter(|i| i % 4 == 1) {
            match d.locate(ItemId::new(id)) {
                DegradedLocation::Replica => {}
                DegradedLocation::Adopted(w) => {
                    assert_ne!(w, WorkerId::new(1));
                    adopted += 1;
                }
                DegradedLocation::RecomputeOnly => recompute += 1,
                other => panic!("dead shard entry located at {other:?}"),
            }
        }
        assert!(adopted > 0, "spare capacity must adopt some entries");
        assert!(recompute > 0, "capacity must bound adoption");
        // Hottest-first: the first dead-shard entry past the replicated area
        // is adopted, the coldest is not.
        assert!(matches!(
            d.locate(ItemId::new(101)),
            DegradedLocation::Adopted(_)
        ));
        assert_eq!(d.locate(ItemId::new(997)), DegradedLocation::RecomputeOnly);
        // No live worker exceeds its slot capacity.
        for &w in d.live_workers() {
            assert!(d.assigned_items(w) <= d.capacity_items());
        }
    }

    #[test]
    fn no_spare_capacity_means_recompute_only() {
        let plan = base(1000, 4, 0.1);
        // Budget exactly the base load: nothing can be adopted.
        let d = DegradedPlacement::new(&plan, &[true, true, false, true], Bytes::new(325 * KV));
        for id in (0..1000u64).filter(|i| i % 4 == 2 && *i >= 100) {
            assert_eq!(d.locate(ItemId::new(id)), DegradedLocation::RecomputeOnly);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn all_dead_is_rejected() {
        let plan = base(10, 2, 0.0);
        let _ = DegradedPlacement::new(&plan, &[false, false], Bytes::from_gb(1));
    }
}
