//! Item KV cache placement (§5.2).
//!
//! The item-prefix cache must hold up to millions of item KV entries across
//! the cache workers' pooled memory. Three strategies are compared in the
//! paper (Figure 7, Table 4):
//!
//! * **HRCS** (hot-replicated cold-sharded, Algorithm 1): replicate the
//!   hottest items on every worker, shard the long tail — [`hrcs`];
//! * **Replicate** (BAT-Replicate): the full item cache on every machine,
//!   maximizing locality but squeezing the user cache;
//! * **HashShard** (BAT-Hash): `1/N` of the item cache per machine,
//!   maximizing user-cache space but paying network transfers.
//!
//! [`plan::ItemPlacementPlan`] materializes a strategy into per-worker
//! memory accounting and an `O(1)` location oracle used by the serving
//! simulator.

pub mod degraded;
pub mod hrcs;
pub mod plan;

pub use degraded::{DegradedLocation, DegradedPlacement};
pub use hrcs::{compute_replication_ratio, HrcsParams};
pub use plan::{ItemLocation, ItemPlacementPlan, PlacementStrategy};
