//! The planted-preference semantic world used to reproduce Table 3.
//!
//! The paper evaluates UP-vs-IP ranking quality with finetuned LLMs on
//! Amazon datasets. We cannot ship those weights, so we build the closest
//! self-contained equivalent that exercises the same code path: a synthetic
//! *semantic world* in which
//!
//! * every item carries a latent unit vector (its embedding in the model's
//!   tied vocabulary table),
//! * every user has a latent preference vector, a history of high-affinity
//!   items (the profile block), and a held-out ground-truth item (their next
//!   interaction),
//! * the GR is the **real transformer** of this crate with the analytic
//!   marker-routed construction ([`crate::Weights::routed`]).
//!
//! History tokens share a planted *profile-marker* direction with the
//! discriminant token, so the discriminant selectively attends the user's
//! history (the way a finetuned ranker routes information) and
//! `logit_i = ⟨E[v_i], h⟩` ranks candidates by affinity.
//!
//! Ordering sensitivity: the transformer applies RoPE to queries and keys
//! and, in the IP layout, profile tokens can attend candidate tokens, so UP
//! and IP give close but not identical metrics — exactly the regime Table 3
//! reports. `qk_scale` controls routing sharpness: a sharp router keeps the
//! candidate *set* from contaminating the profile *sequence* when the
//! blocks are swapped, while a weak router leaks — the paper's observation
//! that degradation "depends on the base model's ability to distinguish
//! between set semantics and sequence semantics" (§4.2).

use crate::config::GrModelConfig;
use crate::prompt::{MaskScheme, PromptLayout};
use crate::transformer::GrModel;
use crate::weights::Weights;
use bat_tensor::Matrix;
use bat_types::PrefixKind;
use rand::seq::SliceRandom;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Configuration of a semantic world.
#[derive(Debug, Clone)]
pub struct SemanticConfig {
    /// Number of items in the corpus.
    pub num_items: usize,
    /// Number of users.
    pub num_users: usize,
    /// Items in each user's history (the profile block encodes these).
    pub history_len: usize,
    /// Tokens per item: one identifier token plus `tokens_per_item - 1`
    /// attribute tokens.
    pub tokens_per_item: usize,
    /// Candidates per ranking request (paper: 100).
    pub candidates: usize,
    /// Attention-routing sharpness. Sharp (~1.4) models are order-robust;
    /// weak (~1.0) routing leaks candidate content into the profile
    /// representation under IP (the §4.2 order-sensitive regime).
    pub qk_scale: f32,
    /// Residual-update strength of each attention layer.
    pub value_scale: f32,
    /// Weight of the profile-marker direction in history-token embeddings.
    pub marker_beta: f32,
    /// Attribute-token noise around the item vector.
    pub attr_noise: f32,
    /// RNG seed for the whole world.
    pub seed: u64,
}

impl SemanticConfig {
    /// A small world suitable for unit tests (fast in debug builds).
    pub fn test_world() -> Self {
        SemanticConfig {
            num_items: 120,
            num_users: 40,
            history_len: 8,
            tokens_per_item: 2,
            candidates: 20,
            qk_scale: 1.4,
            value_scale: 0.5,
            marker_beta: 1.2,
            attr_noise: 0.2,
            seed: 2026,
        }
    }

    /// The Table 3 evaluation world: 100 candidates as in the paper.
    pub fn table3_world(seed: u64) -> Self {
        SemanticConfig {
            num_items: 400,
            num_users: 150,
            history_len: 12,
            tokens_per_item: 3,
            candidates: 100,
            qk_scale: 1.4,
            value_scale: 0.5,
            marker_beta: 1.2,
            attr_noise: 0.2,
            seed,
        }
    }

    /// The order-sensitive ("instruction-tuned-like") variant of this
    /// world: routing is too weak to keep set and sequence semantics apart
    /// when the prompt blocks are swapped (§4.2).
    pub fn order_biased(mut self) -> Self {
        self.qk_scale = 1.0;
        self
    }

    /// Total vocabulary: candidate tokens, history tokens, and two
    /// instruction tokens.
    pub fn vocab_size(&self) -> usize {
        2 * self.num_items * self.tokens_per_item + 2
    }
}

/// One ranking task: a user, their candidate list, and which candidate is
/// the held-out ground truth.
#[derive(Debug, Clone)]
pub struct RankingTask {
    /// User index in the world.
    pub user: usize,
    /// Candidate item indices (ground truth included, position shuffled).
    pub candidates: Vec<usize>,
    /// Index *into `candidates`* of the ground-truth item.
    pub truth_pos: usize,
}

/// A fully-materialized semantic world plus its GR model.
pub struct SemanticWorld {
    /// Configuration the world was generated from.
    pub cfg: SemanticConfig,
    /// The runnable GR.
    pub model: GrModel,
    /// Latent item vectors (unit norm), one per item.
    pub item_vecs: Vec<Vec<f32>>,
    /// Per-user history (item indices).
    pub histories: Vec<Vec<usize>>,
    /// Per-user held-out ground-truth item.
    pub truths: Vec<usize>,
    layout: PromptLayout,
}

const HIDDEN: usize = 32;

impl SemanticWorld {
    /// Generates a world deterministically from `cfg.seed`.
    pub fn generate(cfg: SemanticConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let vocab = cfg.vocab_size();
        let tpi = cfg.tokens_per_item;

        // The profile marker μ: shared by history tokens and the
        // discriminant token, routing attention to the user's history.
        let marker = unit_vec(HIDDEN, &mut rng);
        // Item vectors live in the subspace orthogonal to μ — semantically,
        // "item content" and "profile structure" are different feature
        // axes, so candidate tokens carry no marker signal and cannot steal
        // routed attention from the history.
        let item_vecs: Vec<Vec<f32>> = (0..cfg.num_items)
            .map(|_| {
                let mut v = unit_vec(HIDDEN, &mut rng);
                let proj: f32 = v.iter().zip(&marker).map(|(a, b)| a * b).sum();
                for (x, &m) in v.iter_mut().zip(&marker) {
                    *x -= proj * m;
                }
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect();

        let mut emb = Matrix::zeros(vocab, HIDDEN);
        let set_row = |emb: &mut Matrix, row: usize, v: &[f32]| {
            for (c, &x) in v.iter().enumerate() {
                emb.set(row, c, x);
            }
        };
        for (i, v) in item_vecs.iter().enumerate() {
            // Candidate tokens: id token = e_i, attributes = e_i + noise.
            set_row(&mut emb, i, v);
            for a in 0..tpi - 1 {
                let row = cfg.num_items + i * (tpi - 1) + a;
                let noisy: Vec<f32> = v
                    .iter()
                    .map(|&x| x + rng.gen_range(-cfg.attr_noise..cfg.attr_noise))
                    .collect();
                set_row(&mut emb, row, &noisy);
            }
            // History tokens: damped item vector + marker + noise.
            for a in 0..tpi {
                let row = cfg.num_items * tpi + i * tpi + a;
                let mixed: Vec<f32> = v
                    .iter()
                    .zip(&marker)
                    .map(|(&x, &m)| {
                        0.8 * x
                            + cfg.marker_beta * m
                            + rng.gen_range(-cfg.attr_noise..cfg.attr_noise)
                    })
                    .collect();
                set_row(&mut emb, row, &mixed);
            }
        }
        // Instruction tokens: a filler token and the discriminant (= μ).
        let filler = unit_vec(HIDDEN, &mut rng);
        let scaled: Vec<f32> = filler.iter().map(|&x| 0.3 * x).collect();
        set_row(&mut emb, vocab - 2, &scaled);
        set_row(&mut emb, vocab - 1, &marker);

        // Users: preference vector, history = affinity-biased sample,
        // truth = the highest-affinity item not in the history.
        let mut histories = Vec::with_capacity(cfg.num_users);
        let mut truths = Vec::with_capacity(cfg.num_users);
        for _ in 0..cfg.num_users {
            let pref = unit_vec(HIDDEN, &mut rng);
            let mut scored: Vec<(usize, f32)> = item_vecs
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let aff: f32 = pref.iter().zip(v).map(|(a, b)| a * b).sum();
                    (i, aff + rng.gen_range(-0.15..0.15))
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let truth = scored[0].0;
            let history: Vec<usize> = scored[1..=cfg.history_len]
                .iter()
                .map(|&(i, _)| i)
                .collect();
            histories.push(history);
            truths.push(truth);
        }

        let model_cfg = GrModelConfig {
            vocab_size: vocab,
            hidden_dim: HIDDEN,
            layers: 2,
            query_heads: 2,
            kv_heads: 2,
            head_dim: 16,
            ffn_dim: 64,
            max_positions: 8192,
            rope_base: 10_000.0,
        };
        let weights = Weights::routed(model_cfg, emb, &marker, cfg.qk_scale, cfg.value_scale);
        SemanticWorld {
            model: GrModel::new(weights),
            item_vecs,
            histories,
            truths,
            layout: PromptLayout::new(MaskScheme::Bipartite),
            cfg,
        }
    }

    /// The candidate token sequence of one item: `[id, attributes...]`.
    pub fn item_tokens(&self, item: usize) -> Vec<u32> {
        let tpi = self.cfg.tokens_per_item;
        let mut t = vec![item as u32];
        for a in 0..tpi - 1 {
            t.push((self.cfg.num_items + item * (tpi - 1) + a) as u32);
        }
        t
    }

    /// The history token sequence of one item (marker-bearing vocabulary).
    pub fn history_item_tokens(&self, item: usize) -> Vec<u32> {
        let tpi = self.cfg.tokens_per_item;
        (0..tpi)
            .map(|a| (self.cfg.num_items * tpi + item * tpi + a) as u32)
            .collect()
    }

    /// The user-profile token block: the concatenated history token
    /// sequences of the history items.
    pub fn user_tokens(&self, user: usize) -> Vec<u32> {
        self.histories[user]
            .iter()
            .flat_map(|&i| self.history_item_tokens(i))
            .collect()
    }

    /// The instruction block (two tokens; the second is the discriminant).
    pub fn instr_tokens(&self) -> Vec<u32> {
        let v = self.cfg.vocab_size() as u32;
        vec![v - 2, v - 1]
    }

    /// Builds the ranking task of `user`: ground truth + sampled negatives,
    /// shuffled deterministically.
    pub fn task(&self, user: usize) -> RankingTask {
        let mut rng =
            SmallRng::seed_from_u64(self.cfg.seed ^ (user as u64).wrapping_mul(0x9e37_79b9));
        let truth = self.truths[user];
        let mut cands = vec![truth];
        while cands.len() < self.cfg.candidates {
            let i = rng.gen_range(0..self.cfg.num_items);
            if i != truth && !cands.contains(&i) {
                cands.push(i);
            }
        }
        cands.shuffle(&mut rng);
        let truth_pos = cands.iter().position(|&i| i == truth).unwrap();
        RankingTask {
            user,
            candidates: cands,
            truth_pos,
        }
    }

    /// Scores a task under the given prefix ordering and mask scheme,
    /// returning the candidates' softmax scores (in candidate order).
    pub fn score(&self, task: &RankingTask, prefix: PrefixKind, scheme: MaskScheme) -> Vec<f32> {
        let layout = if scheme == MaskScheme::Bipartite {
            self.layout.clone()
        } else {
            PromptLayout::new(scheme)
        };
        let user = self.user_tokens(task.user);
        let items: Vec<Vec<u32>> = task
            .candidates
            .iter()
            .map(|&i| self.item_tokens(i))
            .collect();
        let seq = layout.build(prefix, &user, &items, &self.instr_tokens());
        let out = self.model.forward(&seq, None);
        let id_tokens: Vec<u32> = task.candidates.iter().map(|&i| i as u32).collect();
        out.candidate_scores(&id_tokens)
    }

    /// Scores a task with the multi-discriminant layout (§4.2's "one
    /// discriminant token per item"): every candidate is read out from its
    /// own discriminant token instead of a single shared one.
    pub fn score_multi_disc(&self, task: &RankingTask, prefix: PrefixKind) -> Vec<f32> {
        let user = self.user_tokens(task.user);
        let items: Vec<Vec<u32>> = task
            .candidates
            .iter()
            .map(|&i| self.item_tokens(i))
            .collect();
        // Each discriminant is the marker token (the read-out head).
        let disc = vec![self.cfg.vocab_size() as u32 - 1; items.len()];
        let seq = self.layout.build_per_item_discriminants(
            prefix,
            &user,
            &items,
            &self.instr_tokens(),
            &disc,
        );
        let out = self.model.forward(&seq, None);
        let id_tokens: Vec<u32> = task.candidates.iter().map(|&i| i as u32).collect();
        self.model
            .candidate_scores_per_discriminant(&seq, &out, &id_tokens)
    }

    /// Scores a task under IP with a PIC repair pass of the given fraction.
    pub fn score_with_pic(&self, task: &RankingTask, fraction: f32) -> Vec<f32> {
        let user = self.user_tokens(task.user);
        let items: Vec<Vec<u32>> = task
            .candidates
            .iter()
            .map(|&i| self.item_tokens(i))
            .collect();
        let out = crate::pic::forward_ip_with_pic(
            &self.model,
            &user,
            &items,
            &self.instr_tokens(),
            crate::pic::PicConfig::new(fraction),
        );
        let id_tokens: Vec<u32> = task.candidates.iter().map(|&i| i as u32).collect();
        out.candidate_scores(&id_tokens)
    }

    /// Runs tasks for the first `n` users, returning the 0-based rank of the
    /// ground-truth item per user (rank 0 = top-1).
    ///
    /// Users are independent ranking requests, so they are scored in
    /// parallel on [`bat_exec`]; each task is seeded from the user index,
    /// and results land in user order, so the output is identical to the
    /// serial loop for any thread count.
    pub fn eval_ranks(&self, prefix: PrefixKind, scheme: MaskScheme, n: usize) -> Vec<usize> {
        bat_exec::parallel_map_indexed(n.min(self.cfg.num_users), 1, |u| {
            let task = self.task(u);
            let scores = self.score(&task, prefix, scheme);
            rank_of(&scores, task.truth_pos)
        })
    }
}

/// The 0-based rank of `target` when scores are sorted descending
/// (ties broken by index).
pub fn rank_of(scores: &[f32], target: usize) -> usize {
    let s = scores[target];
    scores
        .iter()
        .enumerate()
        .filter(|&(i, &v)| v > s || (v == s && i < target))
        .count()
}

fn unit_vec<R: Rng>(dim: usize, rng: &mut R) -> Vec<f32> {
    // Sum of uniforms ≈ Gaussian enough for direction sampling.
    let mut v: Vec<f32> = (0..dim)
        .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).sum::<f32>())
        .collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    v.iter_mut().for_each(|x| *x /= norm);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> SemanticWorld {
        SemanticWorld::generate(SemanticConfig::test_world())
    }

    fn hit_at(ranks: &[usize], k: usize) -> f64 {
        ranks.iter().filter(|&&r| r < k).count() as f64 / ranks.len() as f64
    }

    #[test]
    fn world_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.histories, b.histories);
        assert_eq!(a.truths, b.truths);
    }

    #[test]
    fn task_contains_truth_once() {
        let w = world();
        for u in 0..10 {
            let t = w.task(u);
            assert_eq!(t.candidates.len(), w.cfg.candidates);
            assert_eq!(
                t.candidates.iter().filter(|&&c| c == w.truths[u]).count(),
                1
            );
            assert_eq!(t.candidates[t.truth_pos], w.truths[u]);
        }
    }

    #[test]
    fn truth_never_in_history() {
        let w = world();
        for u in 0..w.cfg.num_users {
            assert!(!w.histories[u].contains(&w.truths[u]));
        }
    }

    #[test]
    fn model_ranks_truth_better_than_chance() {
        let w = world();
        let ranks = w.eval_ranks(PrefixKind::User, MaskScheme::Bipartite, 20);
        let mean_rank: f64 = ranks.iter().map(|&r| r as f64).sum::<f64>() / ranks.len() as f64;
        // Chance would be (candidates-1)/2 = 9.5; the planted model should do
        // far better.
        assert!(
            mean_rank < 5.5,
            "mean rank {mean_rank} not better than chance"
        );
    }

    #[test]
    fn up_and_ip_are_close_for_robust_model() {
        let w = world();
        let up = w.eval_ranks(PrefixKind::User, MaskScheme::Bipartite, 20);
        let ip = w.eval_ranks(PrefixKind::Item, MaskScheme::Bipartite, 20);
        let (h_up, h_ip) = (hit_at(&up, 5), hit_at(&ip, 5));
        assert!(h_up > 0.5, "UP quality collapsed: {h_up}");
        assert!(
            (h_up - h_ip).abs() <= 0.2,
            "robust model should give similar UP ({h_up}) and IP ({h_ip}) quality"
        );
    }

    #[test]
    fn order_biased_model_degrades_ip_more() {
        let robust = world();
        let biased = SemanticWorld::generate(SemanticConfig::test_world().order_biased());
        let gap = |w: &SemanticWorld| {
            let up = w.eval_ranks(PrefixKind::User, MaskScheme::Bipartite, 20);
            let ip = w.eval_ranks(PrefixKind::Item, MaskScheme::Bipartite, 20);
            hit_at(&up, 5) - hit_at(&ip, 5)
        };
        let (g_r, g_b) = (gap(&robust), gap(&biased));
        assert!(
            g_b >= g_r - 0.05,
            "order-biased model should widen the UP-IP gap: robust {g_r}, biased {g_b}"
        );
    }

    #[test]
    fn rank_of_handles_ties_and_extremes() {
        assert_eq!(rank_of(&[0.5, 0.3, 0.2], 0), 0);
        assert_eq!(rank_of(&[0.1, 0.9], 0), 1);
        // Tie: earlier index wins.
        assert_eq!(rank_of(&[0.4, 0.4], 1), 1);
        assert_eq!(rank_of(&[0.4, 0.4], 0), 0);
    }

    #[test]
    fn multi_discriminant_ranks_better_than_chance() {
        let w = world();
        let ranks: Vec<usize> = (0..20)
            .map(|u| {
                let task = w.task(u);
                let scores = w.score_multi_disc(&task, PrefixKind::User);
                rank_of(&scores, task.truth_pos)
            })
            .collect();
        let mean: f64 = ranks.iter().map(|&r| r as f64).sum::<f64>() / ranks.len() as f64;
        assert!(
            mean < 6.0,
            "multi-disc mean rank {mean} not better than chance (9.5)"
        );
    }

    #[test]
    fn multi_discriminant_close_to_single_discriminant() {
        let w = world();
        let hit =
            |ranks: &[usize]| ranks.iter().filter(|&&r| r < 10).count() as f64 / ranks.len() as f64;
        let single = w.eval_ranks(PrefixKind::User, MaskScheme::Bipartite, 20);
        let multi: Vec<usize> = (0..20)
            .map(|u| {
                let task = w.task(u);
                rank_of(&w.score_multi_disc(&task, PrefixKind::User), task.truth_pos)
            })
            .collect();
        let (h1, h2) = (hit(&single), hit(&multi));
        assert!((h1 - h2).abs() < 0.35, "single {h1} vs multi {h2} diverged");
    }

    #[test]
    fn candidate_and_history_vocabularies_are_disjoint() {
        let w = world();
        let cand = w.item_tokens(3);
        let hist = w.history_item_tokens(3);
        assert!(cand.iter().all(|t| !hist.contains(t)));
        assert_eq!(cand.len(), w.cfg.tokens_per_item);
        assert_eq!(hist.len(), w.cfg.tokens_per_item);
    }
}
