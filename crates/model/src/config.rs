//! Architecture configuration of the runnable (laptop-scale) GR transformer.
//!
//! This is distinct from [`bat_types::ModelConfig`]: that type carries the
//! *paper-scale* hyper-parameters (Table 2) used by the cost and memory
//! models, while [`GrModelConfig`] describes the small transformer this
//! crate actually runs forward passes on for the accuracy experiments.

/// Hyper-parameters of the runnable GR transformer.
///
/// ```
/// use bat_model::GrModelConfig;
///
/// let cfg = GrModelConfig::tiny(64);
/// assert_eq!(cfg.kv_dim(), cfg.kv_heads * cfg.head_dim);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GrModelConfig {
    /// Vocabulary size. The first `num_items` token IDs are item-identifier
    /// tokens `v_i` (§2.2); the rest are attribute/instruction tokens.
    pub vocab_size: usize,
    /// Residual-stream width.
    pub hidden_dim: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Number of query heads.
    pub query_heads: usize,
    /// Number of KV heads (GQA: `query_heads % kv_heads == 0`).
    pub kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN inner width.
    pub ffn_dim: usize,
    /// Maximum position ID (RoPE table size).
    pub max_positions: usize,
    /// RoPE frequency base (10 000 in Llama/Qwen).
    pub rope_base: f32,
}

impl GrModelConfig {
    /// A small but non-trivial configuration used by the accuracy
    /// experiments: 2 layers, 4 query heads, 2 KV heads, hidden 32.
    pub fn tiny(vocab_size: usize) -> Self {
        GrModelConfig {
            vocab_size,
            hidden_dim: 32,
            layers: 2,
            query_heads: 4,
            kv_heads: 2,
            head_dim: 16,
            ffn_dim: 64,
            max_positions: 4096,
            rope_base: 10_000.0,
        }
    }

    /// A slightly deeper configuration for stress tests.
    pub fn small(vocab_size: usize) -> Self {
        GrModelConfig {
            vocab_size,
            hidden_dim: 64,
            layers: 4,
            query_heads: 8,
            kv_heads: 4,
            head_dim: 16,
            ffn_dim: 128,
            max_positions: 4096,
            rope_base: 10_000.0,
        }
    }

    /// A Qwen2-1.5B-shaped proxy at laptop scale, used by the perf
    /// baseline (`bench_forward`): it keeps Qwen2-1.5B's head layout
    /// (12 query heads, 2 KV heads — the paper's serving model, Table 2)
    /// and its 1e6 RoPE base, with hidden/FFN widths scaled down ~16× so a
    /// 100-candidate ranking prompt is benchmarkable in scalar f32.
    pub fn qwen2_1_5b_proxy(vocab_size: usize) -> Self {
        GrModelConfig {
            vocab_size,
            hidden_dim: 96,
            layers: 4,
            query_heads: 12,
            kv_heads: 2,
            head_dim: 8,
            ffn_dim: 256,
            max_positions: 4096,
            rope_base: 1_000_000.0,
        }
    }

    /// Total query projection width (`query_heads × head_dim`).
    #[inline]
    pub fn q_dim(&self) -> usize {
        self.query_heads * self.head_dim
    }

    /// Total KV projection width (`kv_heads × head_dim`).
    #[inline]
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    /// Query heads per KV head (GQA group size).
    #[inline]
    pub fn gqa_group(&self) -> usize {
        self.query_heads / self.kv_heads
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.vocab_size == 0 {
            return Err("vocab_size must be positive".into());
        }
        if self.layers == 0 {
            return Err("layers must be positive".into());
        }
        if self.kv_heads == 0 || !self.query_heads.is_multiple_of(self.kv_heads) {
            return Err(format!(
                "query_heads ({}) must be a positive multiple of kv_heads ({})",
                self.query_heads, self.kv_heads
            ));
        }
        if !self.head_dim.is_multiple_of(2) {
            return Err("head_dim must be even for RoPE".into());
        }
        if self.max_positions == 0 {
            return Err("max_positions must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_config_is_valid() {
        let cfg = GrModelConfig::tiny(100);
        cfg.validate().unwrap();
        assert_eq!(cfg.q_dim(), 64);
        assert_eq!(cfg.kv_dim(), 32);
        assert_eq!(cfg.gqa_group(), 2);
    }

    #[test]
    fn qwen_proxy_is_valid_and_keeps_head_layout() {
        let cfg = GrModelConfig::qwen2_1_5b_proxy(4096);
        cfg.validate().unwrap();
        // Qwen2-1.5B's GQA layout: 12 query heads over 2 KV heads.
        assert_eq!((cfg.query_heads, cfg.kv_heads), (12, 2));
        assert_eq!(cfg.gqa_group(), 6);
        assert_eq!(cfg.q_dim(), cfg.hidden_dim);
    }

    #[test]
    fn validation_rejects_bad_gqa() {
        let mut cfg = GrModelConfig::tiny(100);
        cfg.kv_heads = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_odd_head_dim() {
        let mut cfg = GrModelConfig::tiny(100);
        cfg.head_dim = 7;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_fields() {
        for f in ["vocab", "layers", "maxpos"] {
            let mut cfg = GrModelConfig::tiny(100);
            match f {
                "vocab" => cfg.vocab_size = 0,
                "layers" => cfg.layers = 0,
                _ => cfg.max_positions = 0,
            }
            assert!(cfg.validate().is_err(), "{f} should be rejected");
        }
    }
}
