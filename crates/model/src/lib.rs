//! The Generative Recommender model and Bipartite Attention.
//!
//! This crate implements the paper's §4 from scratch:
//!
//! * a complete decoder-only transformer (RMSNorm → GQA attention with RoPE →
//!   SwiGLU FFN, residual connections, tied output head) in portable `f32`;
//! * **prompt layouts** for *User-as-prefix* (UP) and *Item-as-prefix* (IP)
//!   orderings, including the paper's co-designed attention masks (no
//!   cross-item attention) and position-ID assignment (every item restarts
//!   from the same base position);
//! * **KV-cache computation and reuse**: any block of the prompt can be
//!   pre-computed into a [`kv::KvSegment`] and spliced into later forward
//!   passes, exactly like a serving engine reusing a prefix cache;
//! * a **planted-preference semantic model** ([`semantic`]) used to reproduce
//!   the paper's Table 3 (Recall/MRR/NDCG of UP vs IP);
//! * a CacheBlend-style **position-independent caching (PIC)** repair pass
//!   ([`pic`]) that selectively recomputes high-drift item tokens (§4.2,
//!   "Sensitivity to Base Models").
//!
//! The structural claims of Bipartite Attention are verified as *exact*
//! numerical properties in this crate's tests: an item's KV entry computed
//! standalone is identical to the one computed inside a full IP prompt, and a
//! prefix-cached forward pass reproduces full recomputation bit-for-bit
//! (within f32 tolerance).

pub mod config;
pub mod hstu;
pub mod kv;
pub mod pic;
pub mod prompt;
pub mod semantic;
pub mod transformer;
pub mod weights;

pub use config::GrModelConfig;
pub use hstu::HstuModel;
pub use kv::{KvSegment, LayerKv};
pub use prompt::{MaskScheme, PromptLayout, SegTag, TokenSeq};
pub use transformer::{ForwardOutput, ForwardWorkspace, GrModel};
pub use weights::Weights;
