//! KV-cache segments: the unit of prefix reuse.
//!
//! A [`KvSegment`] holds the per-layer keys and values of a contiguous block
//! of prompt tokens, together with the block tags and position IDs they were
//! computed under. The paper stores KV entries at *user/item granularity*
//! (§5.1): one segment per user profile, one segment per item. Segments can
//! be concatenated to assemble the attention context of a prefix-cached
//! forward pass.
//!
//! # Storage layout
//!
//! Keys and values are stored **transposed-packed** in [`ColBlock`]s
//! (plane-major: plane `r` holds component `r` of every token), which is
//! exactly the layout the attention kernels sweep. A segment is therefore
//! packed *once*, when its forward pass computes it; a prefix-cached
//! forward later attends over `[prefix ++ suffix]` through a zero-copy
//! [`bat_tensor::SplitCols`] view instead of re-gathering the cached
//! entries per layer per request (what `pack_kv_transposed` used to do).
//! This one-time packing is sound because the bipartite scheme pins every
//! block's base position (§4.2): a cached segment's planes never need
//! re-rotation or reordering when spliced behind a different prompt.

use crate::prompt::SegTag;
use bat_tensor::ColBlock;

// The fp16 converters moved to `bat_tensor::quant` so the quantized
// cold-tier blocks and this segment-level quantizer share one
// implementation; re-exported here to keep the original API.
pub use bat_tensor::quant::{f16_to_f32, f32_to_f16, fp16_round_trip};

/// Keys and values of one transformer layer for a block of tokens, stored
/// **transposed-packed**: two [`ColBlock`]s of `kv_dim` planes, one column
/// per token. The attention hot path reads the blocks directly (through
/// [`LayerKv::keys`]/[`LayerKv::values`]); the per-token accessors gather a
/// column and are meant for oracles, repair passes, and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerKv {
    kv_dim: usize,
    keys: ColBlock,
    values: ColBlock,
}

impl LayerKv {
    /// Creates an empty layer store for the given KV width.
    pub fn new(kv_dim: usize) -> Self {
        LayerKv {
            kv_dim,
            keys: ColBlock::new(kv_dim),
            values: ColBlock::new(kv_dim),
        }
    }

    /// KV width (number of planes).
    #[inline]
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Number of tokens stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no tokens are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The packed key planes — what the attention kernels sweep.
    #[inline]
    pub fn keys(&self) -> &ColBlock {
        &self.keys
    }

    /// The packed value planes.
    #[inline]
    pub fn values(&self) -> &ColBlock {
        &self.values
    }

    /// Appends one token's key and value rows (one strided scatter each —
    /// the only packing a segment ever undergoes).
    ///
    /// # Panics
    ///
    /// Panics if the rows do not have width `kv_dim`.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        self.keys.push_col(key);
        self.values.push_col(value);
    }

    /// Key row of token `t`, gathered from the packed planes.
    #[inline]
    pub fn key(&self, t: usize) -> Vec<f32> {
        self.keys.col(t)
    }

    /// Value row of token `t`, gathered from the packed planes.
    #[inline]
    pub fn value(&self, t: usize) -> Vec<f32> {
        self.values.col(t)
    }

    /// Overwrites token `t`'s key and value rows (used by the PIC repair
    /// pass to splice recomputed entries into a cached segment).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range or the rows have the wrong width.
    pub fn set_row(&mut self, t: usize, key: &[f32], value: &[f32]) {
        assert!(t < self.len(), "token index out of range");
        self.keys.set_col(t, key);
        self.values.set_col(t, value);
    }

    /// Appends all rows of `other` (per-plane block copies, no per-token
    /// gather).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn extend(&mut self, other: &LayerKv) {
        assert_eq!(self.kv_dim, other.kv_dim, "kv width mismatch");
        self.keys.extend_from(&other.keys);
        self.values.extend_from(&other.values);
    }

    /// Drops all tokens, keeping the packed allocations for reuse — the
    /// forward workspace clears and refills its suffix segment per request.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
    }

    /// Ensures room for `tokens` more columns without reallocating.
    pub fn reserve(&mut self, tokens: usize) {
        self.keys.reserve_cols(tokens);
        self.values.reserve_cols(tokens);
    }

    /// Bytes of packed storage currently resident (keys + values,
    /// capacity-accounted) — what a cache pool charges for this layer.
    pub fn resident_bytes(&self) -> usize {
        self.keys.resident_bytes() + self.values.resident_bytes()
    }
}

/// The KV cache of a contiguous token block across all layers, plus the
/// block tags and positions the block was computed under.
#[derive(Debug, Clone, PartialEq)]
pub struct KvSegment {
    /// Per-layer key/value rows.
    pub layers: Vec<LayerKv>,
    /// Block tag of each token (needed to rebuild attention masks when the
    /// segment is spliced into a later prompt).
    pub segs: Vec<SegTag>,
    /// Position ID each token's RoPE rotation was computed at.
    pub pos: Vec<u32>,
}

impl KvSegment {
    /// Creates an empty segment for a model with `layers` layers of width
    /// `kv_dim`.
    pub fn empty(layers: usize, kv_dim: usize) -> Self {
        KvSegment {
            layers: (0..layers).map(|_| LayerKv::new(kv_dim)).collect(),
            segs: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Number of tokens in the segment.
    #[inline]
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether the segment holds no tokens.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Concatenates segments in order into a single context segment.
    ///
    /// # Panics
    ///
    /// Panics if segments disagree on layer count or KV width.
    pub fn concat(parts: &[&KvSegment]) -> KvSegment {
        assert!(!parts.is_empty(), "concat needs at least one segment");
        let mut out = parts[0].clone();
        for part in &parts[1..] {
            assert_eq!(out.layers.len(), part.layers.len(), "layer count mismatch");
            for (dst, src) in out.layers.iter_mut().zip(&part.layers) {
                dst.extend(src);
            }
            out.segs.extend_from_slice(&part.segs);
            out.pos.extend_from_slice(&part.pos);
        }
        out
    }

    /// Maximum absolute element-wise difference from `other`, or `None` if
    /// shapes differ. Used by tests asserting cache-reuse exactness and by
    /// the PIC drift selector.
    pub fn max_abs_diff(&self, other: &KvSegment) -> Option<f32> {
        if self.len() != other.len() || self.layers.len() != other.layers.len() {
            return None;
        }
        let mut max = 0.0f32;
        for (a, b) in self.layers.iter().zip(&other.layers) {
            if a.kv_dim != b.kv_dim {
                return None;
            }
            for r in 0..a.kv_dim {
                for (x, y) in a.keys.plane(r).iter().zip(b.keys.plane(r)) {
                    max = max.max((x - y).abs());
                }
                for (x, y) in a.values.plane(r).iter().zip(b.values.plane(r)) {
                    max = max.max((x - y).abs());
                }
            }
        }
        Some(max)
    }

    /// Quantizes every key/value element through fp16 storage precision
    /// (§6.1: the KV cache is stored as FP16). Returns the maximum absolute
    /// quantization error introduced.
    pub fn quantize_fp16(&mut self) -> f32 {
        let mut max_err = 0.0f32;
        for layer in &mut self.layers {
            for r in 0..layer.kv_dim {
                for v in layer
                    .keys
                    .plane_mut(r)
                    .iter_mut()
                    .chain(layer.values.plane_mut(r).iter_mut())
                {
                    let q = fp16_round_trip(*v);
                    max_err = max_err.max((q - *v).abs());
                    *v = q;
                }
            }
        }
        max_err
    }

    /// Per-token KV drift against `other`: the max absolute difference of
    /// token `t`'s keys/values across all layers. Drives PIC selection.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn token_drift(&self, other: &KvSegment) -> Vec<f32> {
        assert_eq!(self.len(), other.len(), "token count mismatch");
        assert_eq!(self.layers.len(), other.layers.len(), "layer mismatch");
        let mut drift = vec![0.0f32; self.len()];
        // Plane-major sweep: cache-friendly over the packed layout, and the
        // per-token max is order-independent, so this matches the old
        // token-major walk exactly.
        for (a, b) in self.layers.iter().zip(&other.layers) {
            for r in 0..a.kv_dim {
                for ((slot, x), y) in drift.iter_mut().zip(a.keys.plane(r)).zip(b.keys.plane(r)) {
                    *slot = slot.max((x - y).abs());
                }
                for ((slot, x), y) in drift
                    .iter_mut()
                    .zip(a.values.plane(r))
                    .zip(b.values.plane(r))
                {
                    *slot = slot.max((x - y).abs());
                }
            }
        }
        drift
    }

    /// Reinitializes this segment for reuse as a forward workspace output:
    /// token metadata is dropped and every layer cleared, keeping packed
    /// allocations when the shape already matches (the steady-state case).
    pub fn reset_for(&mut self, layers: usize, kv_dim: usize) {
        let shape_ok =
            self.layers.len() == layers && self.layers.iter().all(|l| l.kv_dim == kv_dim);
        if shape_ok {
            for l in &mut self.layers {
                l.clear();
            }
        } else {
            self.layers = (0..layers).map(|_| LayerKv::new(kv_dim)).collect();
        }
        self.segs.clear();
        self.pos.clear();
    }

    /// Bytes of packed KV storage currently resident across all layers
    /// (capacity-accounted) — the figure a cache pool charges for storing
    /// this segment in its canonical packed form.
    pub fn packed_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(LayerKv::resident_bytes)
            .sum::<usize>()
            + self.segs.len() * std::mem::size_of::<SegTag>()
            + self.pos.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(vals: &[(f32, f32)]) -> KvSegment {
        let mut s = KvSegment::empty(1, 2);
        for &(k, v) in vals {
            s.layers[0].push(&[k, k], &[v, v]);
            s.segs.push(SegTag::User);
            s.pos.push(s.pos.len() as u32);
        }
        s
    }

    #[test]
    fn push_and_read_back() {
        let mut l = LayerKv::new(3);
        l.push(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        l.push(&[7.0, 8.0, 9.0], &[1.0, 1.0, 1.0]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.key(1), &[7.0, 8.0, 9.0]);
        assert_eq!(l.value(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_rejects_wrong_width() {
        let mut l = LayerKv::new(3);
        l.push(&[1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_preserves_order() {
        let a = seg(&[(1.0, 10.0)]);
        let b = seg(&[(2.0, 20.0), (3.0, 30.0)]);
        let c = KvSegment::concat(&[&a, &b]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.layers[0].key(1), &[2.0, 2.0]);
        assert_eq!(c.layers[0].value(2), &[30.0, 30.0]);
    }

    #[test]
    fn diff_detects_changes() {
        let a = seg(&[(1.0, 1.0), (2.0, 2.0)]);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), Some(0.0));
        b.layers[0] = {
            let mut l = LayerKv::new(2);
            l.push(&[1.0, 1.0], &[1.0, 1.0]);
            l.push(&[2.5, 2.0], &[2.0, 2.0]);
            l
        };
        assert_eq!(a.max_abs_diff(&b), Some(0.5));
        let drift = a.token_drift(&b);
        assert_eq!(drift[0], 0.0);
        assert_eq!(drift[1], 0.5);
    }

    #[test]
    fn fp16_conversion_properties() {
        // Exactly representable values survive.
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(fp16_round_trip(v), v, "{v}");
        }
        // Specials.
        assert_eq!(fp16_round_trip(f32::INFINITY), f32::INFINITY);
        assert_eq!(fp16_round_trip(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(fp16_round_trip(f32::NAN).is_nan());
        // Overflow saturates to infinity; deep underflow flushes to zero.
        assert_eq!(fp16_round_trip(1e6), f32::INFINITY);
        assert_eq!(fp16_round_trip(1e-10), 0.0);
        // Subnormal half range is preserved approximately.
        let sub = 3.0e-7f32;
        let q = fp16_round_trip(sub);
        assert!(q > 0.0 && (q - sub).abs() / sub < 0.25, "{q}");
        // Idempotence and relative error bound (2^-11) in the normal range.
        for i in 0..2000 {
            let v = (i as f32 - 1000.0) * 0.0137 + 0.0071;
            let q = fp16_round_trip(v);
            assert_eq!(fp16_round_trip(q), q, "idempotent at {v}");
            if v.abs() > 1e-4 {
                assert!(((q - v) / v).abs() < 5e-4, "rel err at {v}: {q}");
            }
        }
    }

    #[test]
    fn quantize_fp16_bounds_error_and_is_idempotent() {
        let mut seg = seg(&[(0.1234567, 0.7654321), (1.5, -2.25)]);
        let err = seg.quantize_fp16();
        assert!(err > 0.0 && err < 1e-3, "quantization error {err}");
        let mut again = seg.clone();
        assert_eq!(again.quantize_fp16(), 0.0, "already quantized");
        assert_eq!(again, seg);
    }

    #[test]
    fn diff_rejects_shape_mismatch() {
        let a = seg(&[(1.0, 1.0)]);
        let b = seg(&[(1.0, 1.0), (2.0, 2.0)]);
        assert!(a.max_abs_diff(&b).is_none());
    }
}
