//! The GR transformer forward pass, with prefix-cache splicing.
//!
//! [`GrModel::forward`] runs the suffix tokens of a prompt against an
//! optional pre-computed [`KvSegment`] prefix, exactly as a serving engine
//! with prefix caching does (§3.2): projections are computed **only for the
//! suffix tokens**, and attention runs over the concatenation of cached and
//! fresh keys/values.

use crate::config::GrModelConfig;
use crate::kv::KvSegment;
use crate::prompt::{SegTag, TokenSeq};
use crate::weights::Weights;
use bat_tensor::ops::{axpy, dot, rms_norm, silu, stable_softmax_in_place};
use bat_tensor::RopeTable;

/// Result of a forward pass.
#[derive(Debug, Clone)]
pub struct ForwardOutput {
    /// Final (RMS-normalized) hidden state of the last suffix token — the
    /// discriminant token of the single-discriminant ranking prompt (§4.2).
    pub hidden_last: Vec<f32>,
    /// Final (RMS-normalized) hidden states of **all** suffix tokens; the
    /// multi-discriminant extension reads per-item scores from these.
    pub hidden_all: Vec<Vec<f32>>,
    /// KV cache of the suffix tokens, ready to be stored for reuse.
    pub suffix_kv: KvSegment,
    /// Vocabulary logits of the last token (tied output head).
    pub logits: Vec<f32>,
}

impl ForwardOutput {
    /// The paper's relevance scores (§2.2): softmax over the logits of the
    /// candidate identifier tokens `v_i`, in candidate order.
    pub fn candidate_scores(&self, candidate_tokens: &[u32]) -> Vec<f32> {
        let mut s: Vec<f32> = candidate_tokens
            .iter()
            .map(|&t| self.logits[t as usize])
            .collect();
        stable_softmax_in_place(&mut s);
        s
    }
}

/// A runnable Generative Recommender.
///
/// ```
/// use bat_model::{GrModel, GrModelConfig, MaskScheme, PromptLayout, Weights};
/// use bat_types::PrefixKind;
///
/// let model = GrModel::new(Weights::random(GrModelConfig::tiny(64), 1));
/// let layout = PromptLayout::new(MaskScheme::Bipartite);
/// let seq = layout.build(
///     PrefixKind::Item,
///     &[40, 41],                       // user profile tokens
///     &[vec![0, 50], vec![1, 51]],     // candidate items
///     &[60, 61],                       // instruction block
/// );
/// let scores = model.forward(&seq, None).candidate_scores(&[0, 1]);
/// assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct GrModel {
    weights: Weights,
    rope: RopeTable,
}

impl GrModel {
    /// Wraps weights into a runnable model, precomputing the RoPE table.
    pub fn new(weights: Weights) -> Self {
        let rope = RopeTable::new(
            weights.cfg.head_dim,
            weights.cfg.max_positions,
            weights.cfg.rope_base,
        );
        GrModel { weights, rope }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GrModelConfig {
        &self.weights.cfg
    }

    /// Computes the KV segment of a standalone token block (offline item or
    /// user prefix pre-computation, §5.2 Step 3).
    pub fn compute_kv(&self, seq: &TokenSeq) -> KvSegment {
        self.forward(seq, None).suffix_kv
    }

    /// Runs the transformer over `suffix`, optionally splicing a cached
    /// `prefix` KV segment in front of it.
    ///
    /// The attention mask is rebuilt from the block tags stored in the
    /// prefix segment plus the suffix tags, under the suffix's
    /// [`crate::MaskScheme`]; cached keys keep the position IDs they were computed
    /// at, which is sound precisely because the bipartite scheme fixes each
    /// block's base position (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if `suffix` is empty, if a position ID exceeds the RoPE table,
    /// or if the prefix segment's layer count does not match the model.
    pub fn forward(&self, suffix: &TokenSeq, prefix: Option<&KvSegment>) -> ForwardOutput {
        assert!(!suffix.is_empty(), "forward needs at least one token");
        let cfg = &self.weights.cfg;
        if let Some(p) = prefix {
            assert_eq!(p.layers.len(), cfg.layers, "prefix layer count mismatch");
        }
        let p_len = prefix.map_or(0, KvSegment::len);
        let s_len = suffix.len();

        // Combined tag/pos views over [prefix ++ suffix].
        let tag_at = |g: usize| -> SegTag {
            if g < p_len {
                prefix.unwrap().segs[g]
            } else {
                suffix.segs[g - p_len]
            }
        };

        // Hidden states of suffix tokens only.
        let mut h: Vec<Vec<f32>> = suffix
            .tokens
            .iter()
            .map(|&t| self.weights.embedding.row(t as usize).to_vec())
            .collect();

        let mut suffix_kv = KvSegment::empty(cfg.layers, cfg.kv_dim());
        suffix_kv.segs = suffix.segs.clone();
        suffix_kv.pos = suffix.pos.clone();

        let scale = 1.0 / (cfg.head_dim as f32).sqrt();
        let group = cfg.gqa_group();

        for (l, lw) in self.weights.layers.iter().enumerate() {
            // Projections for every suffix token first (they only depend on
            // the previous layer's hidden states).
            let mut qs: Vec<Vec<f32>> = Vec::with_capacity(s_len);
            for (t, ht) in h.iter().enumerate() {
                let xn = rms_norm(ht, &lw.attn_norm, 1e-6);
                let mut q = lw.wq.vecmul(&xn);
                let mut k = lw.wk.vecmul(&xn);
                let v = lw.wv.vecmul(&xn);
                let pos = suffix.pos[t] as usize;
                for qh in 0..cfg.query_heads {
                    self.rope
                        .apply(&mut q[qh * cfg.head_dim..(qh + 1) * cfg.head_dim], pos);
                }
                for kh in 0..cfg.kv_heads {
                    self.rope
                        .apply(&mut k[kh * cfg.head_dim..(kh + 1) * cfg.head_dim], pos);
                }
                suffix_kv.layers[l].push(&k, &v);
                qs.push(q);
            }

            // Attention + FFN per suffix token.
            for t in 0..s_len {
                let g_q = p_len + t;
                let q = &qs[t];
                let mut attn_out = vec![0.0f32; cfg.q_dim()];
                for qh in 0..cfg.query_heads {
                    let kv_head = qh / group;
                    let q_slice = &q[qh * cfg.head_dim..(qh + 1) * cfg.head_dim];
                    // Gather logits over allowed keys.
                    let mut idx: Vec<usize> = Vec::with_capacity(g_q + 1);
                    let mut logits: Vec<f32> = Vec::with_capacity(g_q + 1);
                    for g_k in 0..=g_q {
                        if !allowed(suffix.scheme, tag_at(g_q), tag_at(g_k)) {
                            continue;
                        }
                        let key_row = if g_k < p_len {
                            prefix.unwrap().layers[l].key(g_k)
                        } else {
                            suffix_kv.layers[l].key(g_k - p_len)
                        };
                        let ks = &key_row[kv_head * cfg.head_dim..(kv_head + 1) * cfg.head_dim];
                        idx.push(g_k);
                        logits.push(dot(q_slice, ks) * scale);
                    }
                    stable_softmax_in_place(&mut logits);
                    let out = &mut attn_out[qh * cfg.head_dim..(qh + 1) * cfg.head_dim];
                    for (w, &g_k) in logits.iter().zip(&idx) {
                        if *w == 0.0 {
                            continue;
                        }
                        let val_row = if g_k < p_len {
                            prefix.unwrap().layers[l].value(g_k)
                        } else {
                            suffix_kv.layers[l].value(g_k - p_len)
                        };
                        let vs = &val_row[kv_head * cfg.head_dim..(kv_head + 1) * cfg.head_dim];
                        axpy(out, *w, vs);
                    }
                }
                let proj = lw.wo.vecmul(&attn_out);
                for (a, b) in h[t].iter_mut().zip(&proj) {
                    *a += b;
                }

                // SwiGLU FFN.
                let xn2 = rms_norm(&h[t], &lw.ffn_norm, 1e-6);
                let gate = lw.w_gate.vecmul(&xn2);
                let up = lw.w_up.vecmul(&xn2);
                let act: Vec<f32> = gate.iter().zip(&up).map(|(&g, &u)| silu(g) * u).collect();
                let down = lw.w_down.vecmul(&act);
                for (a, b) in h[t].iter_mut().zip(&down) {
                    *a += b;
                }
            }
        }

        let hidden_all: Vec<Vec<f32>> = h
            .iter()
            .map(|ht| rms_norm(ht, &self.weights.final_norm, 1e-6))
            .collect();
        let hidden_last = hidden_all.last().cloned().unwrap();
        // Tied output head: logit_i = ⟨E[i], h⟩.
        let logits: Vec<f32> = (0..cfg.vocab_size)
            .map(|i| dot(self.weights.embedding.row(i), &hidden_last))
            .collect();

        ForwardOutput {
            hidden_last,
            hidden_all,
            suffix_kv,
            logits,
        }
    }

    /// The multi-discriminant read-out (§4.2's "one discriminant token per
    /// item" extension): for a suffix laid out by
    /// [`crate::PromptLayout::build_per_item_discriminants`], scores
    /// candidate `i` as `softmax_i ⟨E[v_i], h(Disc(i))⟩` — each candidate
    /// from its own discriminant's hidden state.
    ///
    /// # Panics
    ///
    /// Panics if the suffix does not contain exactly one [`SegTag::Disc`]
    /// token per candidate.
    pub fn candidate_scores_per_discriminant(
        &self,
        suffix: &TokenSeq,
        out: &ForwardOutput,
        candidate_tokens: &[u32],
    ) -> Vec<f32> {
        let mut scores = vec![f32::NEG_INFINITY; candidate_tokens.len()];
        let mut found = 0usize;
        for (t, &tag) in suffix.segs.iter().enumerate() {
            if let SegTag::Disc(i) = tag {
                let i = i as usize;
                assert!(i < candidate_tokens.len(), "discriminant beyond candidates");
                scores[i] = dot(
                    self.weights.embedding.row(candidate_tokens[i] as usize),
                    &out.hidden_all[t],
                );
                found += 1;
            }
        }
        assert_eq!(
            found,
            candidate_tokens.len(),
            "one discriminant per candidate required"
        );
        stable_softmax_in_place(&mut scores);
        scores
    }
}

use crate::prompt::allowed_tags as allowed;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{MaskScheme, PromptLayout};
    use bat_types::PrefixKind;

    fn tiny_model(seed: u64) -> GrModel {
        GrModel::new(Weights::random(GrModelConfig::tiny(64), seed))
    }

    fn parts() -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
        (
            vec![40, 41, 42, 43, 44],
            vec![vec![0, 50], vec![1, 51], vec![2, 52], vec![3, 53]],
            vec![60, 61],
        )
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn forward_produces_finite_logits() {
        let model = tiny_model(3);
        let (u, i, s) = parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::User, &u, &i, &s);
        let out = model.forward(&seq, None);
        assert_eq!(out.logits.len(), 64);
        assert!(out.logits.iter().all(|v| v.is_finite()));
        let scores = out.candidate_scores(&[0, 1, 2, 3]);
        assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    /// The fundamental prefix-caching identity (§3.2): computing the prompt
    /// in one shot equals computing the prefix KV first and splicing it.
    #[test]
    fn prefix_cached_forward_equals_recompute_up() {
        let model = tiny_model(11);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::User, &u, &i, &s);

        let full = model.forward(&seq, None);

        let (user_block, rest) = seq.split_at(u.len());
        let prefix_kv = model.compute_kv(&user_block);
        let cached = model.forward(&rest, Some(&prefix_kv));

        assert!(max_diff(&full.hidden_last, &cached.hidden_last) < 1e-4);
        assert!(max_diff(&full.logits, &cached.logits) < 1e-3);
    }

    /// Same identity in the Item-as-prefix ordering, with the item block as
    /// the cached prefix.
    #[test]
    fn prefix_cached_forward_equals_recompute_ip() {
        let model = tiny_model(12);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let item_block_len = i.iter().map(Vec::len).sum::<usize>();

        let full = model.forward(&seq, None);
        let (item_block, rest) = seq.split_at(item_block_len);
        let prefix_kv = model.compute_kv(&item_block);
        let cached = model.forward(&rest, Some(&prefix_kv));

        assert!(max_diff(&full.hidden_last, &cached.hidden_last) < 1e-4);
        assert!(max_diff(&full.logits, &cached.logits) < 1e-3);
    }

    /// §4.2/§4.3: under the bipartite scheme, an item's KV computed
    /// standalone equals its KV inside the full IP prompt — the property
    /// that makes cross-user item-cache sharing sound.
    #[test]
    fn item_kv_is_context_independent_under_bipartite() {
        let model = tiny_model(13);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let full = model.forward(&seq, None);

        // Item 2 occupies tokens 4..6 of the prompt.
        let standalone = layout.item_standalone(2, &i[2], 0);
        let solo_kv = model.compute_kv(&standalone);
        for l in 0..model.config().layers {
            for (t, g) in (4..6).enumerate() {
                assert!(max_diff(full.suffix_kv.layers[l].key(g), solo_kv.layers[l].key(t)) < 1e-5);
                assert!(
                    max_diff(
                        full.suffix_kv.layers[l].value(g),
                        solo_kv.layers[l].value(t)
                    ) < 1e-5
                );
            }
        }
    }

    /// Under the naive causal scheme the same item's KV *does* depend on
    /// context (positions shift and earlier tokens leak in), which is the
    /// paper's §3.3 argument for why vanilla prefix caching cannot share
    /// item caches.
    #[test]
    fn item_kv_is_context_dependent_under_naive() {
        let model = tiny_model(13);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::NaiveCausal);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let full = model.forward(&seq, None);

        let standalone = layout.item_standalone(2, &i[2], 0);
        let solo_kv = model.compute_kv(&standalone);
        // Item 2 occupies tokens 4..6; its position there is 4, not 0.
        let mut differs = false;
        for l in 0..model.config().layers {
            if max_diff(full.suffix_kv.layers[l].key(4), solo_kv.layers[l].key(0)) > 1e-3 {
                differs = true;
            }
        }
        assert!(differs, "naive-causal item KV should be context-dependent");
    }

    /// Candidate order inside the item block must not matter under the
    /// bipartite scheme: permuting items permutes scores identically.
    #[test]
    fn item_permutation_invariance_of_scores() {
        let model = tiny_model(21);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);

        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let scores = model.forward(&seq, None).candidate_scores(&[0, 1, 2, 3]);

        let permuted: Vec<Vec<u32>> = vec![i[2].clone(), i[0].clone(), i[3].clone(), i[1].clone()];
        let seq_p = layout.build(PrefixKind::Item, &u, &permuted, &s);
        let scores_p = model.forward(&seq_p, None).candidate_scores(&[2, 0, 3, 1]);

        assert!(max_diff(&[scores[2], scores[0], scores[3], scores[1]], &scores_p) < 1e-4);
    }

    /// §6.1 stores KV in FP16: a prefix cache quantized to half precision
    /// must not change candidate scores materially.
    #[test]
    fn fp16_prefix_cache_barely_moves_scores() {
        let model = tiny_model(17);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let item_block: usize = i.iter().map(Vec::len).sum();
        let (head, rest) = seq.split_at(item_block);

        let exact_kv = model.compute_kv(&head);
        let mut fp16_kv = exact_kv.clone();
        let err = fp16_kv.quantize_fp16();
        assert!(err > 0.0, "quantization should not be a no-op");

        let exact = model
            .forward(&rest, Some(&exact_kv))
            .candidate_scores(&[0, 1, 2, 3]);
        let quant = model
            .forward(&rest, Some(&fp16_kv))
            .candidate_scores(&[0, 1, 2, 3]);
        let drift = max_diff(&exact, &quant);
        assert!(drift < 1e-3, "fp16 KV drifted scores by {drift}");
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_suffix_rejected() {
        let model = tiny_model(1);
        let seq = TokenSeq {
            tokens: vec![],
            segs: vec![],
            pos: vec![],
            scheme: MaskScheme::Bipartite,
        };
        let _ = model.forward(&seq, None);
    }

    #[test]
    fn gqa_and_mha_configs_both_run() {
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::User, &u, &i, &s);
        for cfg in [GrModelConfig::tiny(64), GrModelConfig::small(64)] {
            let model = GrModel::new(Weights::random(cfg, 5));
            let out = model.forward(&seq, None);
            assert!(out.logits.iter().all(|v| v.is_finite()));
        }
    }
}
