//! The GR transformer forward pass, with prefix-cache splicing.
//!
//! [`GrModel::forward`] runs the suffix tokens of a prompt against an
//! optional pre-computed [`KvSegment`] prefix, exactly as a serving engine
//! with prefix caching does (§3.2): projections are computed **only for the
//! suffix tokens**, and attention runs over the concatenation of cached and
//! fresh keys/values.

use crate::config::GrModelConfig;
use crate::kv::KvSegment;
use crate::prompt::{SegTag, TokenSeq};
use crate::weights::Weights;
use bat_exec::with_thread_scratch;
use bat_tensor::ops::{
    axpy, dot, dot_fast, fast_silu_mul_in_place, rms_norm, rms_norm_into, silu,
    stable_softmax_fast_in_place, stable_softmax_in_place,
};
use bat_tensor::{ColBlock, Matrix, RopeTable, SplitCols};

/// Result of a forward pass.
#[derive(Debug, Clone)]
pub struct ForwardOutput {
    /// Final (RMS-normalized) hidden states of **all** suffix tokens as one
    /// contiguous `s_len × hidden` matrix; read rows via
    /// [`ForwardOutput::hidden`] / [`ForwardOutput::hidden_last`]. The
    /// multi-discriminant extension reads per-item scores from these.
    pub hidden_all: Matrix,
    /// KV cache of the suffix tokens in the canonical transposed-packed
    /// layout, ready to be stored for reuse.
    pub suffix_kv: KvSegment,
    /// Vocabulary logits of the last token (tied output head).
    pub logits: Vec<f32>,
}

impl ForwardOutput {
    /// An empty output placeholder (workspace initial state).
    pub fn empty() -> Self {
        ForwardOutput {
            hidden_all: Matrix::zeros(0, 0),
            suffix_kv: KvSegment::empty(0, 0),
            logits: Vec::new(),
        }
    }

    /// Final hidden state of suffix token `t` (a row view, no copy).
    #[inline]
    pub fn hidden(&self, t: usize) -> &[f32] {
        self.hidden_all.row(t)
    }

    /// Final hidden state of the last suffix token — the discriminant token
    /// of the single-discriminant ranking prompt (§4.2).
    #[inline]
    pub fn hidden_last(&self) -> &[f32] {
        self.hidden_all.row(self.hidden_all.rows() - 1)
    }

    /// The paper's relevance scores (§2.2): softmax over the logits of the
    /// candidate identifier tokens `v_i`, in candidate order.
    pub fn candidate_scores(&self, candidate_tokens: &[u32]) -> Vec<f32> {
        let mut s: Vec<f32> = candidate_tokens
            .iter()
            .map(|&t| self.logits[t as usize])
            .collect();
        stable_softmax_in_place(&mut s);
        s
    }
}

/// Reusable scratch for [`GrModel::forward_with`] (and the HSTU twin): every
/// intermediate of the forward pass — norms, projections, attention rows,
/// FFN activations, masks, and the output itself — lives here and is
/// re-shaped (capacity kept) instead of re-allocated. Keep one per worker
/// and the steady-state forward performs **zero heap allocations** after
/// the first call at a given shape; per-token attention scratch is
/// thread-local via [`bat_exec::with_thread_scratch`], so pool workers
/// (persistent daemon threads) warm theirs once.
pub struct ForwardWorkspace {
    pub(crate) tags: Vec<SegTag>,
    pub(crate) mask: MaskBuf,
    pub(crate) h: Matrix,
    pub(crate) xn: Matrix,
    pub(crate) q: Matrix,
    pub(crate) k: Matrix,
    pub(crate) v: Matrix,
    pub(crate) attn: Matrix,
    pub(crate) o: Matrix,
    pub(crate) act: Matrix,
    pub(crate) up: Matrix,
    pub(crate) out: ForwardOutput,
}

impl ForwardWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        let m = || Matrix::zeros(0, 0);
        ForwardWorkspace {
            tags: Vec::new(),
            mask: MaskBuf::default(),
            h: m(),
            xn: m(),
            q: m(),
            k: m(),
            v: m(),
            attn: m(),
            o: m(),
            act: m(),
            up: m(),
            out: ForwardOutput::empty(),
        }
    }

    /// Consumes the workspace, yielding the last forward's output.
    pub fn into_output(self) -> ForwardOutput {
        self.out
    }

    /// The last forward's output.
    pub fn output(&self) -> &ForwardOutput {
        &self.out
    }
}

impl Default for ForwardWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// A runnable Generative Recommender.
///
/// ```
/// use bat_model::{GrModel, GrModelConfig, MaskScheme, PromptLayout, Weights};
/// use bat_types::PrefixKind;
///
/// let model = GrModel::new(Weights::random(GrModelConfig::tiny(64), 1));
/// let layout = PromptLayout::new(MaskScheme::Bipartite);
/// let seq = layout.build(
///     PrefixKind::Item,
///     &[40, 41],                       // user profile tokens
///     &[vec![0, 50], vec![1, 51]],     // candidate items
///     &[60, 61],                       // instruction block
/// );
/// let scores = model.forward(&seq, None).candidate_scores(&[0, 1]);
/// assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct GrModel {
    weights: Weights,
    rope: RopeTable,
    /// Transposed embedding table (`hidden × vocab`), packed once at
    /// construction so the tied output head is a single axpy-form
    /// [`Matrix::vecmul`] over hidden rows instead of a per-vocab-row dot.
    embedding_t: Matrix,
    /// Per-layer flag: the FFN is structurally zero (any of gate/up/down is
    /// an all-zero matrix, so the FFN output is exactly zero — true for the
    /// analytic routed construction) and the whole block can be skipped.
    ffn_zero: Vec<bool>,
}

impl GrModel {
    /// Wraps weights into a runnable model, precomputing the RoPE table,
    /// the transposed embedding for the tied output head, and the
    /// structural FFN-zero flags.
    ///
    /// Projection weights are *not* repacked: they are stored `in × out`
    /// row-major, which is exactly the layout the axpy-form
    /// [`Matrix::matmul`] kernel wants for `X·W` — batching removed the
    /// transposes instead of hiding them.
    pub fn new(weights: Weights) -> Self {
        let rope = RopeTable::new(
            weights.cfg.head_dim,
            weights.cfg.max_positions,
            weights.cfg.rope_base,
        );
        let embedding_t = weights.embedding.transpose();
        let ffn_zero = weights
            .layers
            .iter()
            .map(|lw| lw.w_gate.is_zero() || lw.w_up.is_zero() || lw.w_down.is_zero())
            .collect();
        GrModel {
            weights,
            rope,
            embedding_t,
            ffn_zero,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GrModelConfig {
        &self.weights.cfg
    }

    /// Computes the KV segment of a standalone token block (offline item or
    /// user prefix pre-computation, §5.2 Step 3).
    pub fn compute_kv(&self, seq: &TokenSeq) -> KvSegment {
        self.forward(seq, None).suffix_kv
    }

    /// Runs the transformer over `suffix`, optionally splicing a cached
    /// `prefix` KV segment in front of it.
    ///
    /// The attention mask is rebuilt from the block tags stored in the
    /// prefix segment plus the suffix tags, under the suffix's
    /// [`crate::MaskScheme`]; cached keys keep the position IDs they were computed
    /// at, which is sound precisely because the bipartite scheme fixes each
    /// block's base position (§4.2).
    ///
    /// # Execution
    ///
    /// The pass is batched and parallel: per layer, projections for all
    /// suffix tokens run as one axpy-form `X·W` [`Matrix::matmul`] (weights
    /// are stored `in × out`, so no transpose exists anywhere on this
    /// path); keys/values are repacked per KV head into contiguous
    /// `g_len × d` matrices; and attention is **mask-gathered** — each
    /// token scores only the positions its bipartite-mask row allows, like
    /// the seed, instead of a full causal rectangle that is then mostly
    /// masked away (under the item-prefix layout >90 % of the rectangle is
    /// disallowed, so gathering is where the forward's arithmetic saving
    /// lives). Rows run in parallel; every output slot is written by
    /// exactly one task with fixed inner order, so logits are
    /// **bit-identical for any thread count** — the property the
    /// parallel-determinism suite pins.
    ///
    /// # Panics
    ///
    /// Panics if `suffix` is empty, if a position ID exceeds the RoPE table,
    /// or if the prefix segment's layer count does not match the model.
    pub fn forward(&self, suffix: &TokenSeq, prefix: Option<&KvSegment>) -> ForwardOutput {
        let mut ws = ForwardWorkspace::new();
        self.forward_impl(suffix, prefix, &mut ws, false);
        ws.out
    }

    /// [`GrModel::forward`] into a caller-owned [`ForwardWorkspace`]: every
    /// intermediate and the output itself are re-shaped in place, so a
    /// warmed workspace makes the steady-state forward **allocation-free**
    /// (the zero-alloc integration test pins this). Bit-identical to
    /// [`GrModel::forward`].
    pub fn forward_with<'w>(
        &self,
        suffix: &TokenSeq,
        prefix: Option<&KvSegment>,
        ws: &'w mut ForwardWorkspace,
    ) -> &'w ForwardOutput {
        self.forward_impl(suffix, prefix, ws, false);
        &ws.out
    }

    /// The pre-packed-layout data movement, kept as the honest "before"
    /// baseline for the perf suite: per layer, the whole cached prefix is
    /// copied together with the suffix into one contiguous block before
    /// attention — what every forward used to pay per request when
    /// segments were stored row-major. Bit-identical to
    /// [`GrModel::forward`]; not a production path.
    #[doc(hidden)]
    pub fn forward_prefix_repack_baseline(
        &self,
        suffix: &TokenSeq,
        prefix: Option<&KvSegment>,
    ) -> ForwardOutput {
        let mut ws = ForwardWorkspace::new();
        self.forward_impl(suffix, prefix, &mut ws, true);
        ws.out
    }

    fn forward_impl(
        &self,
        suffix: &TokenSeq,
        prefix: Option<&KvSegment>,
        ws: &mut ForwardWorkspace,
        repack: bool,
    ) {
        assert!(!suffix.is_empty(), "forward needs at least one token");
        let cfg = &self.weights.cfg;
        if let Some(p) = prefix {
            assert_eq!(p.layers.len(), cfg.layers, "prefix layer count mismatch");
        }
        let p_len = prefix.map_or(0, KvSegment::len);
        let s_len = suffix.len();
        let g_len = p_len + s_len;
        let d = cfg.head_dim;
        let group = cfg.gqa_group();
        let scale = 1.0 / (d as f32).sqrt();
        let kv_dim = cfg.kv_dim();

        let ForwardWorkspace {
            tags,
            mask,
            h,
            xn,
            q,
            k,
            v,
            attn,
            o,
            act,
            up,
            out,
        } = ws;
        let ForwardOutput {
            hidden_all,
            suffix_kv,
            logits,
        } = out;

        // Combined tags over [prefix ++ suffix] and the bipartite mask
        // rows, one per suffix token over its causal window. Tags and
        // scheme are layer- and head-independent, so these are computed
        // exactly once per forward.
        tags.clear();
        tags.extend((0..g_len).map(|g| {
            if g < p_len {
                prefix.unwrap().segs[g]
            } else {
                suffix.segs[g - p_len]
            }
        }));
        mask.build(suffix.scheme, tags, p_len, s_len);
        let grain = mask.attn_grain(cfg.q_dim());

        // Hidden states of suffix tokens as one s_len × hidden matrix.
        h.reset(s_len, cfg.hidden_dim);
        for (t, &tok) in suffix.tokens.iter().enumerate() {
            h.row_mut(t)
                .copy_from_slice(self.weights.embedding.row(tok as usize));
        }

        suffix_kv.reset_for(cfg.layers, kv_dim);
        suffix_kv.segs.extend_from_slice(&suffix.segs);
        suffix_kv.pos.extend_from_slice(&suffix.pos);
        for lkv in suffix_kv.layers.iter_mut() {
            lkv.reserve(s_len);
        }

        for l in 0..cfg.layers {
            let lw = &self.weights.layers[l];

            // Batched projections for every suffix token (they only depend
            // on the previous layer's hidden states), then RoPE per row.
            norm_rows_into(h, &lw.attn_norm, xn);
            xn.matmul_into(&lw.wq, q);
            xn.matmul_into(&lw.wk, k);
            xn.matmul_into(&lw.wv, v);
            q.par_rows_mut(4, |t, row| {
                let pos = suffix.pos[t] as usize;
                for qh in 0..cfg.query_heads {
                    self.rope.apply(&mut row[qh * d..(qh + 1) * d], pos);
                }
            });
            k.par_rows_mut(4, |t, row| {
                let pos = suffix.pos[t] as usize;
                for kh in 0..cfg.kv_heads {
                    self.rope.apply(&mut row[kh * d..(kh + 1) * d], pos);
                }
            });
            for t in 0..s_len {
                suffix_kv.layers[l].push(k.row(t), v.row(t));
            }

            // Attention reads the cached prefix block and the just-pushed
            // suffix block through a zero-copy [`SplitCols`] view — the
            // canonical packed layout means nothing is gathered or repacked
            // per request. Adaptive per token: dense rows (user tokens,
            // which see most of the context) sweep the full causal window
            // and mask by -inf; sparse rows (item tokens, which see only
            // their own item under the bipartite scheme) gather just the
            // allowed positions. Path choice depends only on the mask row,
            // never on the thread count.
            let sl = &suffix_kv.layers[l];
            attn.reset(s_len, cfg.q_dim());
            let q_ro: &Matrix = q;
            let mask_ro: &MaskBuf = mask;
            if repack {
                // Replay the pre-change data movement faithfully: the old
                // `pack_kv_transposed` walked the row-major segment token
                // by token and scattered each row into the transposed
                // planes — one strided write per element, fresh blocks per
                // layer per request. A plane-level memcpy would understate
                // that cost, so the baseline packs column-wise too.
                let mut kcomb = ColBlock::with_capacity(kv_dim, g_len);
                let mut vcomb = ColBlock::with_capacity(kv_dim, g_len);
                let k_src = SplitCols::new(prefix.map(|p| p.layers[l].keys()), sl.keys());
                let v_src = SplitCols::new(prefix.map(|p| p.layers[l].values()), sl.values());
                let mut colbuf = vec![0.0f32; kv_dim];
                for j in 0..g_len {
                    for (r, c) in colbuf.iter_mut().enumerate() {
                        *c = k_src.at(r, j);
                    }
                    kcomb.push_col(&colbuf);
                }
                for j in 0..g_len {
                    for (r, c) in colbuf.iter_mut().enumerate() {
                        *c = v_src.at(r, j);
                    }
                    vcomb.push_col(&colbuf);
                }
                let kview = SplitCols::new(None, &kcomb);
                let vview = SplitCols::new(None, &vcomb);
                attn.par_rows_mut(grain, |t, row| {
                    attend_token(
                        q_ro.row(t),
                        kview,
                        vview,
                        mask_ro.row(t),
                        mask_ro.allowed(t),
                        group,
                        d,
                        scale,
                        row,
                    );
                });
            } else {
                let kview = SplitCols::new(prefix.map(|p| p.layers[l].keys()), sl.keys());
                let vview = SplitCols::new(prefix.map(|p| p.layers[l].values()), sl.values());
                attn.par_rows_mut(grain, |t, row| {
                    attend_token(
                        q_ro.row(t),
                        kview,
                        vview,
                        mask_ro.row(t),
                        mask_ro.allowed(t),
                        group,
                        d,
                        scale,
                        row,
                    );
                });
            }
            attn.matmul_into(&lw.wo, o);
            let o_ro: &Matrix = o;
            h.par_rows_mut(8, |t, row| axpy(row, 1.0, o_ro.row(t)));

            // SwiGLU FFN, batched; skipped when structurally zero.
            if !self.ffn_zero[l] {
                norm_rows_into(h, &lw.ffn_norm, xn);
                xn.matmul_into(&lw.w_gate, act);
                xn.matmul_into(&lw.w_up, up);
                let up_ro: &Matrix = up;
                act.par_rows_mut(4, |t, row| fast_silu_mul_in_place(row, up_ro.row(t)));
                act.matmul_into(&lw.w_down, o);
                let o_ro: &Matrix = o;
                h.par_rows_mut(8, |t, row| axpy(row, 1.0, o_ro.row(t)));
            }
        }

        norm_rows_into(h, &self.weights.final_norm, hidden_all);
        // Tied output head: logit_i = ⟨E[i], h⟩, computed axpy-form over
        // the pre-transposed embedding so the whole vocab vectorizes.
        self.embedding_t
            .vecmul_into(hidden_all.row(s_len - 1), logits);
    }

    /// The seed's serial per-token forward pass, kept verbatim as the
    /// honest before/after baseline for the perf suite and as the oracle
    /// the batched [`GrModel::forward`] is equivalence-tested against. Not
    /// a production path.
    #[doc(hidden)]
    pub fn forward_reference(
        &self,
        suffix: &TokenSeq,
        prefix: Option<&KvSegment>,
    ) -> ForwardOutput {
        assert!(!suffix.is_empty(), "forward needs at least one token");
        let cfg = &self.weights.cfg;
        if let Some(p) = prefix {
            assert_eq!(p.layers.len(), cfg.layers, "prefix layer count mismatch");
        }
        let p_len = prefix.map_or(0, KvSegment::len);
        let s_len = suffix.len();

        let tag_at = |g: usize| -> SegTag {
            if g < p_len {
                prefix.unwrap().segs[g]
            } else {
                suffix.segs[g - p_len]
            }
        };

        let mut h: Vec<Vec<f32>> = suffix
            .tokens
            .iter()
            .map(|&t| self.weights.embedding.row(t as usize).to_vec())
            .collect();

        let mut suffix_kv = KvSegment::empty(cfg.layers, cfg.kv_dim());
        suffix_kv.segs = suffix.segs.clone();
        suffix_kv.pos = suffix.pos.clone();

        let scale = 1.0 / (cfg.head_dim as f32).sqrt();
        let group = cfg.gqa_group();

        for (l, lw) in self.weights.layers.iter().enumerate() {
            let mut qs: Vec<Vec<f32>> = Vec::with_capacity(s_len);
            for (t, ht) in h.iter().enumerate() {
                let xn = rms_norm(ht, &lw.attn_norm, 1e-6);
                let mut q = lw.wq.vecmul_sparse(&xn);
                let mut k = lw.wk.vecmul_sparse(&xn);
                let v = lw.wv.vecmul_sparse(&xn);
                let pos = suffix.pos[t] as usize;
                for qh in 0..cfg.query_heads {
                    self.rope
                        .apply(&mut q[qh * cfg.head_dim..(qh + 1) * cfg.head_dim], pos);
                }
                for kh in 0..cfg.kv_heads {
                    self.rope
                        .apply(&mut k[kh * cfg.head_dim..(kh + 1) * cfg.head_dim], pos);
                }
                suffix_kv.layers[l].push(&k, &v);
                qs.push(q);
            }

            for t in 0..s_len {
                let g_q = p_len + t;
                let q = &qs[t];
                let mut attn_out = vec![0.0f32; cfg.q_dim()];
                for qh in 0..cfg.query_heads {
                    let kv_head = qh / group;
                    let q_slice = &q[qh * cfg.head_dim..(qh + 1) * cfg.head_dim];
                    let mut idx: Vec<usize> = Vec::with_capacity(g_q + 1);
                    let mut logits: Vec<f32> = Vec::with_capacity(g_q + 1);
                    for g_k in 0..=g_q {
                        if !allowed(suffix.scheme, tag_at(g_q), tag_at(g_k)) {
                            continue;
                        }
                        let key_row = if g_k < p_len {
                            prefix.unwrap().layers[l].key(g_k)
                        } else {
                            suffix_kv.layers[l].key(g_k - p_len)
                        };
                        let ks = &key_row[kv_head * cfg.head_dim..(kv_head + 1) * cfg.head_dim];
                        idx.push(g_k);
                        logits.push(dot(q_slice, ks) * scale);
                    }
                    stable_softmax_in_place(&mut logits);
                    let out = &mut attn_out[qh * cfg.head_dim..(qh + 1) * cfg.head_dim];
                    for (w, &g_k) in logits.iter().zip(&idx) {
                        if *w == 0.0 {
                            continue;
                        }
                        let val_row = if g_k < p_len {
                            prefix.unwrap().layers[l].value(g_k)
                        } else {
                            suffix_kv.layers[l].value(g_k - p_len)
                        };
                        let vs = &val_row[kv_head * cfg.head_dim..(kv_head + 1) * cfg.head_dim];
                        axpy(out, *w, vs);
                    }
                }
                let proj = lw.wo.vecmul_sparse(&attn_out);
                for (a, b) in h[t].iter_mut().zip(&proj) {
                    *a += b;
                }

                let xn2 = rms_norm(&h[t], &lw.ffn_norm, 1e-6);
                let gate = lw.w_gate.vecmul_sparse(&xn2);
                let up = lw.w_up.vecmul_sparse(&xn2);
                let act: Vec<f32> = gate.iter().zip(&up).map(|(&g, &u)| silu(g) * u).collect();
                let down = lw.w_down.vecmul_sparse(&act);
                for (a, b) in h[t].iter_mut().zip(&down) {
                    *a += b;
                }
            }
        }

        let mut hidden_all = Matrix::zeros(s_len, cfg.hidden_dim);
        for (t, ht) in h.iter().enumerate() {
            rms_norm_into(ht, &self.weights.final_norm, 1e-6, hidden_all.row_mut(t));
        }
        let hidden_last = hidden_all.row(s_len - 1);
        let logits: Vec<f32> = (0..cfg.vocab_size)
            .map(|i| dot(self.weights.embedding.row(i), hidden_last))
            .collect();

        ForwardOutput {
            hidden_all,
            suffix_kv,
            logits,
        }
    }

    /// The multi-discriminant read-out (§4.2's "one discriminant token per
    /// item" extension): for a suffix laid out by
    /// [`crate::PromptLayout::build_per_item_discriminants`], scores
    /// candidate `i` as `softmax_i ⟨E[v_i], h(Disc(i))⟩` — each candidate
    /// from its own discriminant's hidden state.
    ///
    /// # Panics
    ///
    /// Panics if the suffix does not contain exactly one [`SegTag::Disc`]
    /// token per candidate.
    pub fn candidate_scores_per_discriminant(
        &self,
        suffix: &TokenSeq,
        out: &ForwardOutput,
        candidate_tokens: &[u32],
    ) -> Vec<f32> {
        let mut scores = vec![f32::NEG_INFINITY; candidate_tokens.len()];
        let mut found = 0usize;
        for (t, &tag) in suffix.segs.iter().enumerate() {
            if let SegTag::Disc(i) = tag {
                let i = i as usize;
                assert!(i < candidate_tokens.len(), "discriminant beyond candidates");
                scores[i] = dot(
                    self.weights.embedding.row(candidate_tokens[i] as usize),
                    out.hidden(t),
                );
                found += 1;
            }
        }
        assert_eq!(
            found,
            candidate_tokens.len(),
            "one discriminant per candidate required"
        );
        stable_softmax_in_place(&mut scores);
        scores
    }
}

use crate::prompt::allowed_tags as allowed;

/// One flat bipartite-mask row per suffix token, covering its causal window
/// `0..=p_len + t`, with per-row offsets and allowed counts. Masks depend
/// only on tags and the scheme, never on the layer or head, so each forward
/// builds them exactly once — in place, keeping capacity, so a warmed
/// workspace rebuilds masks without allocating. Also records the estimated
/// attention cost under `attend_token`'s adaptive dense/sparse choice,
/// which gates parallel dispatch.
#[derive(Default)]
pub(crate) struct MaskBuf {
    flat: Vec<bool>,
    off: Vec<usize>,
    allowed: Vec<usize>,
    cost: usize,
}

impl MaskBuf {
    pub(crate) fn build(
        &mut self,
        scheme: crate::prompt::MaskScheme,
        tags: &[SegTag],
        p_len: usize,
        s_len: usize,
    ) {
        self.flat.clear();
        self.off.clear();
        self.allowed.clear();
        self.cost = 0;
        self.off.push(0);
        for t in 0..s_len {
            let tq = tags[p_len + t];
            let window = p_len + t + 1;
            let mut count = 0usize;
            for tg in &tags[..window] {
                let ok = allowed(scheme, tq, *tg);
                count += ok as usize;
                self.flat.push(ok);
            }
            self.off.push(self.flat.len());
            self.allowed.push(count);
            // Positions this row actually sweeps: dense rows pay the whole
            // window, sparse rows only their gathered allowed positions.
            self.cost += if count * 4 >= window { window } else { count };
        }
    }

    /// Mask row of suffix token `t` (length = its causal window).
    #[inline]
    pub(crate) fn row(&self, t: usize) -> &[bool] {
        &self.flat[self.off[t]..self.off[t + 1]]
    }

    /// Allowed-position count of suffix token `t`'s row.
    #[inline]
    pub(crate) fn allowed(&self, t: usize) -> usize {
        self.allowed[t]
    }

    /// Parallel grain for the attention stage: rows are farmed out to the
    /// pool only when the stage's estimated MAC count clears the same
    /// threshold the matmul kernels use; tiny attentions run inline and
    /// skip dispatch overhead. The choice is a pure function of the masks
    /// and model width — never the thread count — so parallel results stay
    /// bit-identical (path choices and write slots are unchanged).
    pub(crate) fn attn_grain(&self, q_dim: usize) -> usize {
        const ATTN_PAR_MACS: usize = 32 * 1024;
        if self.cost * q_dim * 2 >= ATTN_PAR_MACS {
            1
        } else {
            usize::MAX
        }
    }
}

/// RMS-normalizes every row of `h` with `gain` into `out`, in parallel,
/// reusing `out`'s storage.
pub(crate) fn norm_rows_into(h: &Matrix, gain: &[f32], out: &mut Matrix) {
    out.reset(h.rows(), h.cols());
    out.par_rows_mut(4, |t, row| rms_norm_into(h.row(t), gain, 1e-6, row));
}

/// Thread-local scratch of [`attend_token`]: score row, gathered indices,
/// and gathered K/V buffers. Held via [`bat_exec::with_thread_scratch`], so
/// each pool worker (a persistent daemon thread) warms its own buffers once
/// and every later token on any request reuses them allocation-free.
#[derive(Default)]
struct AttnScratch {
    s: Vec<f32>,
    idx: Vec<usize>,
    kg: Vec<f32>,
    vg: Vec<f32>,
}

/// Softmax attention of **all** query heads for one token, over the
/// zero-copy [`SplitCols`] views of the packed `[prefix ++ suffix]`
/// keys/values and the token's bipartite-mask row (whose length is the
/// causal window). Adaptive: when at least a quarter of the window is
/// allowed, each head scores the whole window with vectorized axpy-plane
/// sweeps and masks by `-inf` (under [`stable_softmax_fast_in_place`] a
/// masked slot carries weight ≲ 1e-38 — zero at f32 accumulation scale);
/// otherwise the allowed positions are gathered **once per token** into
/// contiguous per-KV-head buffers that all heads then sweep branch-free
/// (under the item-prefix layout a sparse row allows ~10 of ~200 positions,
/// so the per-head cost used to be pure gather overhead). The path choice
/// depends only on the mask row, so results are thread-count-independent
/// either way; the split kernels are bit-identical to contiguous sweeps
/// (see [`bat_tensor::packed`]).
// Flat scalar/slice args: this sits inside the parallel per-token closure,
// and bundling them into a struct would just move the construction cost
// into the hot loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attend_token(
    q_row: &[f32],
    keys: SplitCols<'_>,
    vals: SplitCols<'_>,
    mask: &[bool],
    allowed: usize,
    group: usize,
    d: usize,
    scale: f32,
    out_row: &mut [f32],
) {
    let window = mask.len();
    let heads = q_row.len() / d;
    with_thread_scratch(|scr: &mut AttnScratch| {
        if allowed * 4 >= window {
            let s = &mut scr.s;
            s.clear();
            s.resize(window, 0.0);
            for qh in 0..heads {
                let kh = qh / group;
                let qv = &q_row[qh * d..(qh + 1) * d];
                s.fill(0.0);
                for (c, &qc) in qv.iter().enumerate() {
                    keys.axpy_plane(kh * d + c, window, qc, s);
                }
                for (sj, &ok) in s.iter_mut().zip(mask) {
                    *sj = if ok { *sj * scale } else { f32::NEG_INFINITY };
                }
                stable_softmax_fast_in_place(s);
                vals.rows_dot_acc(kh * d, s, &mut out_row[qh * d..(qh + 1) * d]);
            }
        } else {
            let AttnScratch { s, idx, kg, vg } = scr;
            idx.clear();
            idx.extend((0..window).filter(|&j| mask[j]));
            let n = idx.len();
            if n == 0 {
                return; // fully-masked row: attention output stays zero
            }
            // Gathered K/V, packed `d × n` per KV head so the per-head
            // loops below run the same contiguous axpy/dot kernels as the
            // dense path.
            let kv_dim = keys.rows();
            kg.clear();
            kg.resize(kv_dim * n, 0.0);
            vg.clear();
            vg.resize(kv_dim * n, 0.0);
            for r in 0..kv_dim {
                keys.gather_plane_into(r, idx, &mut kg[r * n..(r + 1) * n]);
                vals.gather_plane_into(r, idx, &mut vg[r * n..(r + 1) * n]);
            }
            s.clear();
            s.resize(n, 0.0);
            for qh in 0..heads {
                let kh = qh / group;
                let qv = &q_row[qh * d..(qh + 1) * d];
                s.fill(0.0);
                for (c, &qc) in qv.iter().enumerate() {
                    let lo = (kh * d + c) * n;
                    axpy(s, qc, &kg[lo..lo + n]);
                }
                s.iter_mut().for_each(|x| *x *= scale);
                stable_softmax_fast_in_place(s);
                let out = &mut out_row[qh * d..(qh + 1) * d];
                for (c, o) in out.iter_mut().enumerate() {
                    let lo = (kh * d + c) * n;
                    *o += dot_fast(s, &vg[lo..lo + n]);
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{MaskScheme, PromptLayout};
    use bat_types::PrefixKind;

    fn tiny_model(seed: u64) -> GrModel {
        GrModel::new(Weights::random(GrModelConfig::tiny(64), seed))
    }

    fn parts() -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
        (
            vec![40, 41, 42, 43, 44],
            vec![vec![0, 50], vec![1, 51], vec![2, 52], vec![3, 53]],
            vec![60, 61],
        )
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn forward_produces_finite_logits() {
        let model = tiny_model(3);
        let (u, i, s) = parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::User, &u, &i, &s);
        let out = model.forward(&seq, None);
        assert_eq!(out.logits.len(), 64);
        assert!(out.logits.iter().all(|v| v.is_finite()));
        let scores = out.candidate_scores(&[0, 1, 2, 3]);
        assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    /// The fundamental prefix-caching identity (§3.2): computing the prompt
    /// in one shot equals computing the prefix KV first and splicing it.
    #[test]
    fn prefix_cached_forward_equals_recompute_up() {
        let model = tiny_model(11);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::User, &u, &i, &s);

        let full = model.forward(&seq, None);

        let (user_block, rest) = seq.split_at(u.len());
        let prefix_kv = model.compute_kv(&user_block);
        let cached = model.forward(&rest, Some(&prefix_kv));

        assert!(max_diff(full.hidden_last(), cached.hidden_last()) < 1e-4);
        assert!(max_diff(&full.logits, &cached.logits) < 1e-3);
    }

    /// Same identity in the Item-as-prefix ordering, with the item block as
    /// the cached prefix.
    #[test]
    fn prefix_cached_forward_equals_recompute_ip() {
        let model = tiny_model(12);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let item_block_len = i.iter().map(Vec::len).sum::<usize>();

        let full = model.forward(&seq, None);
        let (item_block, rest) = seq.split_at(item_block_len);
        let prefix_kv = model.compute_kv(&item_block);
        let cached = model.forward(&rest, Some(&prefix_kv));

        assert!(max_diff(full.hidden_last(), cached.hidden_last()) < 1e-4);
        assert!(max_diff(&full.logits, &cached.logits) < 1e-3);
    }

    /// §4.2/§4.3: under the bipartite scheme, an item's KV computed
    /// standalone equals its KV inside the full IP prompt — the property
    /// that makes cross-user item-cache sharing sound.
    #[test]
    fn item_kv_is_context_independent_under_bipartite() {
        let model = tiny_model(13);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let full = model.forward(&seq, None);

        // Item 2 occupies tokens 4..6 of the prompt.
        let standalone = layout.item_standalone(2, &i[2], 0);
        let solo_kv = model.compute_kv(&standalone);
        for l in 0..model.config().layers {
            for (t, g) in (4..6).enumerate() {
                assert!(
                    max_diff(&full.suffix_kv.layers[l].key(g), &solo_kv.layers[l].key(t)) < 1e-5
                );
                assert!(
                    max_diff(
                        &full.suffix_kv.layers[l].value(g),
                        &solo_kv.layers[l].value(t)
                    ) < 1e-5
                );
            }
        }
    }

    /// Under the naive causal scheme the same item's KV *does* depend on
    /// context (positions shift and earlier tokens leak in), which is the
    /// paper's §3.3 argument for why vanilla prefix caching cannot share
    /// item caches.
    #[test]
    fn item_kv_is_context_dependent_under_naive() {
        let model = tiny_model(13);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::NaiveCausal);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let full = model.forward(&seq, None);

        let standalone = layout.item_standalone(2, &i[2], 0);
        let solo_kv = model.compute_kv(&standalone);
        // Item 2 occupies tokens 4..6; its position there is 4, not 0.
        let mut differs = false;
        for l in 0..model.config().layers {
            if max_diff(&full.suffix_kv.layers[l].key(4), &solo_kv.layers[l].key(0)) > 1e-3 {
                differs = true;
            }
        }
        assert!(differs, "naive-causal item KV should be context-dependent");
    }

    /// Candidate order inside the item block must not matter under the
    /// bipartite scheme: permuting items permutes scores identically.
    #[test]
    fn item_permutation_invariance_of_scores() {
        let model = tiny_model(21);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);

        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let scores = model.forward(&seq, None).candidate_scores(&[0, 1, 2, 3]);

        let permuted: Vec<Vec<u32>> = vec![i[2].clone(), i[0].clone(), i[3].clone(), i[1].clone()];
        let seq_p = layout.build(PrefixKind::Item, &u, &permuted, &s);
        let scores_p = model.forward(&seq_p, None).candidate_scores(&[2, 0, 3, 1]);

        assert!(max_diff(&[scores[2], scores[0], scores[3], scores[1]], &scores_p) < 1e-4);
    }

    /// §6.1 stores KV in FP16: a prefix cache quantized to half precision
    /// must not change candidate scores materially.
    #[test]
    fn fp16_prefix_cache_barely_moves_scores() {
        let model = tiny_model(17);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let item_block: usize = i.iter().map(Vec::len).sum();
        let (head, rest) = seq.split_at(item_block);

        let exact_kv = model.compute_kv(&head);
        let mut fp16_kv = exact_kv.clone();
        let err = fp16_kv.quantize_fp16();
        assert!(err > 0.0, "quantization should not be a no-op");

        let exact = model
            .forward(&rest, Some(&exact_kv))
            .candidate_scores(&[0, 1, 2, 3]);
        let quant = model
            .forward(&rest, Some(&fp16_kv))
            .candidate_scores(&[0, 1, 2, 3]);
        let drift = max_diff(&exact, &quant);
        assert!(drift < 1e-3, "fp16 KV drifted scores by {drift}");
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_suffix_rejected() {
        let model = tiny_model(1);
        let seq = TokenSeq {
            tokens: vec![],
            segs: vec![],
            pos: vec![],
            scheme: MaskScheme::Bipartite,
        };
        let _ = model.forward(&seq, None);
    }

    /// The batched/parallel forward agrees with the seed's serial
    /// per-token oracle for both prefix orderings, with and without a
    /// spliced prefix cache.
    #[test]
    fn batched_forward_matches_reference_oracle() {
        let model = tiny_model(29);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        for kind in [PrefixKind::User, PrefixKind::Item] {
            let seq = layout.build(kind, &u, &i, &s);
            let new = model.forward(&seq, None);
            let old = model.forward_reference(&seq, None);
            assert!(
                max_diff(&new.logits, &old.logits) < 1e-3,
                "{kind}: batched forward diverged from the seed oracle"
            );
            assert!(max_diff(new.hidden_last(), old.hidden_last()) < 1e-4);
            assert!(new.suffix_kv.max_abs_diff(&old.suffix_kv).unwrap() < 1e-5);

            let prefix_len = match kind {
                PrefixKind::User => u.len(),
                PrefixKind::Item => i.iter().map(Vec::len).sum(),
            };
            let (head, tail) = seq.split_at(prefix_len);
            let kv = model.compute_kv(&head);
            let new_c = model.forward(&tail, Some(&kv));
            let old_c = model.forward_reference(&tail, Some(&kv));
            assert!(
                max_diff(&new_c.logits, &old_c.logits) < 1e-3,
                "{kind}: cached batched forward diverged from the seed oracle"
            );
        }
    }

    /// The parallel forward must be bit-identical to its own serial run —
    /// the determinism contract of the execution layer.
    #[test]
    fn forward_is_bit_identical_across_thread_counts() {
        let model = tiny_model(31);
        let (u, i, s) = parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::Item, &u, &i, &s);
        bat_exec::set_threads(1);
        let gold = model.forward(&seq, None);
        for t in [2, 4, 8] {
            bat_exec::set_threads(t);
            let got = model.forward(&seq, None);
            assert!(
                gold.logits
                    .iter()
                    .zip(&got.logits)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{t} threads: logits diverged from serial"
            );
        }
        bat_exec::set_threads(1);
    }

    /// The routed construction has an all-zero FFN, so the structural-skip
    /// flag must be set there and clear for random weights.
    #[test]
    fn ffn_zero_flags_follow_weight_structure() {
        let random = tiny_model(1);
        assert!(random.ffn_zero.iter().all(|&z| !z));
        let cfg = GrModelConfig {
            query_heads: 2,
            kv_heads: 2,
            head_dim: 16,
            hidden_dim: 32,
            ..GrModelConfig::tiny(10)
        };
        let emb = bat_tensor::Matrix::zeros(10, 32);
        let mut marker = vec![0.0f32; 32];
        marker[0] = 1.0;
        let routed = GrModel::new(Weights::routed(cfg, emb, &marker, 0.5, 0.5));
        assert!(routed.ffn_zero.iter().all(|&z| z));
    }

    /// A reused workspace must not leak state between calls: running a
    /// different request in between leaves the original bit-identical,
    /// including through a cached-prefix splice.
    #[test]
    fn forward_with_reused_workspace_is_bit_identical() {
        let model = tiny_model(37);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::User, &u, &i, &s);
        let (head, tail) = seq.split_at(u.len());
        let kv = model.compute_kv(&head);

        let gold_full = model.forward(&seq, None);
        let gold_cached = model.forward(&tail, Some(&kv));

        let mut ws = ForwardWorkspace::new();
        // Interleave differently-shaped calls through one workspace.
        let _ = model.forward_with(&tail, Some(&kv), &mut ws);
        let got_full = model.forward_with(&seq, None, &mut ws);
        assert_eq!(got_full.logits.len(), gold_full.logits.len());
        assert!(got_full
            .logits
            .iter()
            .zip(&gold_full.logits)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(got_full.suffix_kv, gold_full.suffix_kv);

        let got_cached = model.forward_with(&tail, Some(&kv), &mut ws);
        assert!(got_cached
            .logits
            .iter()
            .zip(&gold_cached.logits)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(got_cached.hidden_all, gold_cached.hidden_all);
    }

    /// The zero-copy split-view forward must be bit-identical to the
    /// repack-per-layer baseline (the old data movement) for both prefix
    /// orderings — the guarantee that made the packed layout a pure win.
    #[test]
    fn packed_forward_bit_matches_repack_baseline() {
        let model = tiny_model(41);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        for kind in [PrefixKind::User, PrefixKind::Item] {
            let seq = layout.build(kind, &u, &i, &s);
            let prefix_len = match kind {
                PrefixKind::User => u.len(),
                PrefixKind::Item => i.iter().map(Vec::len).sum(),
            };
            let (head, tail) = seq.split_at(prefix_len);
            let kv = model.compute_kv(&head);
            let packed = model.forward(&tail, Some(&kv));
            let repacked = model.forward_prefix_repack_baseline(&tail, Some(&kv));
            assert!(packed
                .logits
                .iter()
                .zip(&repacked.logits)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_eq!(packed.hidden_all, repacked.hidden_all);
            assert_eq!(packed.suffix_kv, repacked.suffix_kv);
        }
    }

    #[test]
    fn gqa_and_mha_configs_both_run() {
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::User, &u, &i, &s);
        for cfg in [GrModelConfig::tiny(64), GrModelConfig::small(64)] {
            let model = GrModel::new(Weights::random(cfg, 5));
            let out = model.forward(&seq, None);
            assert!(out.logits.iter().all(|v| v.is_finite()));
        }
    }
}
