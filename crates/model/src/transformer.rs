//! The GR transformer forward pass, with prefix-cache splicing.
//!
//! [`GrModel::forward`] runs the suffix tokens of a prompt against an
//! optional pre-computed [`KvSegment`] prefix, exactly as a serving engine
//! with prefix caching does (§3.2): projections are computed **only for the
//! suffix tokens**, and attention runs over the concatenation of cached and
//! fresh keys/values.

use crate::config::GrModelConfig;
use crate::kv::KvSegment;
use crate::prompt::{SegTag, TokenSeq};
use crate::weights::Weights;
use bat_exec::parallel_map_indexed;
use bat_tensor::ops::{
    axpy, dot, dot_fast, fast_silu_mul_in_place, rms_norm, silu, stable_softmax_fast_in_place,
    stable_softmax_in_place,
};
use bat_tensor::{Matrix, RopeTable};

/// Result of a forward pass.
#[derive(Debug, Clone)]
pub struct ForwardOutput {
    /// Final (RMS-normalized) hidden state of the last suffix token — the
    /// discriminant token of the single-discriminant ranking prompt (§4.2).
    pub hidden_last: Vec<f32>,
    /// Final (RMS-normalized) hidden states of **all** suffix tokens; the
    /// multi-discriminant extension reads per-item scores from these.
    pub hidden_all: Vec<Vec<f32>>,
    /// KV cache of the suffix tokens, ready to be stored for reuse.
    pub suffix_kv: KvSegment,
    /// Vocabulary logits of the last token (tied output head).
    pub logits: Vec<f32>,
}

impl ForwardOutput {
    /// The paper's relevance scores (§2.2): softmax over the logits of the
    /// candidate identifier tokens `v_i`, in candidate order.
    pub fn candidate_scores(&self, candidate_tokens: &[u32]) -> Vec<f32> {
        let mut s: Vec<f32> = candidate_tokens
            .iter()
            .map(|&t| self.logits[t as usize])
            .collect();
        stable_softmax_in_place(&mut s);
        s
    }
}

/// A runnable Generative Recommender.
///
/// ```
/// use bat_model::{GrModel, GrModelConfig, MaskScheme, PromptLayout, Weights};
/// use bat_types::PrefixKind;
///
/// let model = GrModel::new(Weights::random(GrModelConfig::tiny(64), 1));
/// let layout = PromptLayout::new(MaskScheme::Bipartite);
/// let seq = layout.build(
///     PrefixKind::Item,
///     &[40, 41],                       // user profile tokens
///     &[vec![0, 50], vec![1, 51]],     // candidate items
///     &[60, 61],                       // instruction block
/// );
/// let scores = model.forward(&seq, None).candidate_scores(&[0, 1]);
/// assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct GrModel {
    weights: Weights,
    rope: RopeTable,
    /// Transposed embedding table (`hidden × vocab`), packed once at
    /// construction so the tied output head is a single axpy-form
    /// [`Matrix::vecmul`] over hidden rows instead of a per-vocab-row dot.
    embedding_t: Matrix,
    /// Per-layer flag: the FFN is structurally zero (any of gate/up/down is
    /// an all-zero matrix, so the FFN output is exactly zero — true for the
    /// analytic routed construction) and the whole block can be skipped.
    ffn_zero: Vec<bool>,
}

impl GrModel {
    /// Wraps weights into a runnable model, precomputing the RoPE table,
    /// the transposed embedding for the tied output head, and the
    /// structural FFN-zero flags.
    ///
    /// Projection weights are *not* repacked: they are stored `in × out`
    /// row-major, which is exactly the layout the axpy-form
    /// [`Matrix::matmul`] kernel wants for `X·W` — batching removed the
    /// transposes instead of hiding them.
    pub fn new(weights: Weights) -> Self {
        let rope = RopeTable::new(
            weights.cfg.head_dim,
            weights.cfg.max_positions,
            weights.cfg.rope_base,
        );
        let embedding_t = weights.embedding.transpose();
        let ffn_zero = weights
            .layers
            .iter()
            .map(|lw| lw.w_gate.is_zero() || lw.w_up.is_zero() || lw.w_down.is_zero())
            .collect();
        GrModel {
            weights,
            rope,
            embedding_t,
            ffn_zero,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GrModelConfig {
        &self.weights.cfg
    }

    /// Computes the KV segment of a standalone token block (offline item or
    /// user prefix pre-computation, §5.2 Step 3).
    pub fn compute_kv(&self, seq: &TokenSeq) -> KvSegment {
        self.forward(seq, None).suffix_kv
    }

    /// Runs the transformer over `suffix`, optionally splicing a cached
    /// `prefix` KV segment in front of it.
    ///
    /// The attention mask is rebuilt from the block tags stored in the
    /// prefix segment plus the suffix tags, under the suffix's
    /// [`crate::MaskScheme`]; cached keys keep the position IDs they were computed
    /// at, which is sound precisely because the bipartite scheme fixes each
    /// block's base position (§4.2).
    ///
    /// # Execution
    ///
    /// The pass is batched and parallel: per layer, projections for all
    /// suffix tokens run as one axpy-form `X·W` [`Matrix::matmul`] (weights
    /// are stored `in × out`, so no transpose exists anywhere on this
    /// path); keys/values are repacked per KV head into contiguous
    /// `g_len × d` matrices; and attention is **mask-gathered** — each
    /// token scores only the positions its bipartite-mask row allows, like
    /// the seed, instead of a full causal rectangle that is then mostly
    /// masked away (under the item-prefix layout >90 % of the rectangle is
    /// disallowed, so gathering is where the forward's arithmetic saving
    /// lives). Rows run in parallel; every output slot is written by
    /// exactly one task with fixed inner order, so logits are
    /// **bit-identical for any thread count** — the property the
    /// parallel-determinism suite pins.
    ///
    /// # Panics
    ///
    /// Panics if `suffix` is empty, if a position ID exceeds the RoPE table,
    /// or if the prefix segment's layer count does not match the model.
    pub fn forward(&self, suffix: &TokenSeq, prefix: Option<&KvSegment>) -> ForwardOutput {
        assert!(!suffix.is_empty(), "forward needs at least one token");
        let cfg = &self.weights.cfg;
        if let Some(p) = prefix {
            assert_eq!(p.layers.len(), cfg.layers, "prefix layer count mismatch");
        }
        let p_len = prefix.map_or(0, KvSegment::len);
        let s_len = suffix.len();
        let g_len = p_len + s_len;
        let d = cfg.head_dim;
        let group = cfg.gqa_group();
        let scale = 1.0 / (d as f32).sqrt();

        // Combined tags over [prefix ++ suffix] and the bipartite mask
        // rows, one per suffix token over its causal window. Tags and
        // scheme are layer- and head-independent, so these are computed
        // exactly once per forward.
        let tags = combined_tags(suffix, prefix);
        let mask_rows = build_mask_rows(suffix.scheme, &tags, p_len, s_len);

        // Hidden states of suffix tokens as one s_len × hidden matrix.
        let mut h = Matrix::zeros(s_len, cfg.hidden_dim);
        for (t, &tok) in suffix.tokens.iter().enumerate() {
            h.row_mut(t)
                .copy_from_slice(self.weights.embedding.row(tok as usize));
        }

        let mut suffix_kv = KvSegment::empty(cfg.layers, cfg.kv_dim());
        suffix_kv.segs = suffix.segs.clone();
        suffix_kv.pos = suffix.pos.clone();

        for l in 0..cfg.layers {
            let lw = &self.weights.layers[l];

            // Batched projections for every suffix token (they only depend
            // on the previous layer's hidden states), then RoPE per row.
            let xn = norm_rows(&h, &lw.attn_norm);
            let mut q = xn.matmul(&lw.wq);
            let mut k = xn.matmul(&lw.wk);
            let v = xn.matmul(&lw.wv);
            q.par_rows_mut(4, |t, row| {
                let pos = suffix.pos[t] as usize;
                for qh in 0..cfg.query_heads {
                    self.rope.apply(&mut row[qh * d..(qh + 1) * d], pos);
                }
            });
            k.par_rows_mut(4, |t, row| {
                let pos = suffix.pos[t] as usize;
                for kh in 0..cfg.kv_heads {
                    self.rope.apply(&mut row[kh * d..(kh + 1) * d], pos);
                }
            });
            for t in 0..s_len {
                suffix_kv.layers[l].push(k.row(t), v.row(t));
            }

            // Per-KV-head keys/values over the whole context
            // [prefix ++ suffix], packed **transposed** (`d × g_len`): the
            // dense attention path then reads full contiguous rows (one
            // dimension each), which is what the vectorized axpy/dot
            // kernels want.
            let (keys_t, vals_t) =
                pack_kv_transposed(cfg.kv_heads, d, g_len, prefix.map(|p| &p.layers[l]), &k, &v);

            // Adaptive masked attention, parallel over tokens. Dense rows
            // (user/instruction tokens, which see most of the context)
            // score the full causal window with vectorized axpy/dot sweeps
            // and mask by -inf; sparse rows (item tokens, which see only
            // their own item under the bipartite scheme) gather just the
            // allowed positions. Path choice depends only on the mask row,
            // never on the thread count.
            let mut attn = Matrix::zeros(s_len, cfg.q_dim());
            attn.par_rows_mut(1, |t, row| {
                attend_token(
                    q.row(t),
                    &keys_t,
                    &vals_t,
                    &mask_rows[t],
                    group,
                    d,
                    scale,
                    row,
                );
            });
            let o = attn.matmul(&lw.wo);
            h.par_rows_mut(8, |t, row| axpy(row, 1.0, o.row(t)));

            // SwiGLU FFN, batched; skipped when structurally zero.
            if !self.ffn_zero[l] {
                let xn2 = norm_rows(&h, &lw.ffn_norm);
                let mut act = xn2.matmul(&lw.w_gate);
                let up = xn2.matmul(&lw.w_up);
                act.par_rows_mut(4, |t, row| fast_silu_mul_in_place(row, up.row(t)));
                let down = act.matmul(&lw.w_down);
                h.par_rows_mut(8, |t, row| axpy(row, 1.0, down.row(t)));
            }
        }

        let normed = norm_rows(&h, &self.weights.final_norm);
        let hidden_all: Vec<Vec<f32>> = (0..s_len).map(|t| normed.row(t).to_vec()).collect();
        let hidden_last = hidden_all.last().cloned().unwrap();
        // Tied output head: logit_i = ⟨E[i], h⟩, computed axpy-form over
        // the pre-transposed embedding so the whole vocab vectorizes.
        let logits = self.embedding_t.vecmul(&hidden_last);

        ForwardOutput {
            hidden_last,
            hidden_all,
            suffix_kv,
            logits,
        }
    }

    /// The seed's serial per-token forward pass, kept verbatim as the
    /// honest before/after baseline for the perf suite and as the oracle
    /// the batched [`GrModel::forward`] is equivalence-tested against. Not
    /// a production path.
    #[doc(hidden)]
    pub fn forward_reference(
        &self,
        suffix: &TokenSeq,
        prefix: Option<&KvSegment>,
    ) -> ForwardOutput {
        assert!(!suffix.is_empty(), "forward needs at least one token");
        let cfg = &self.weights.cfg;
        if let Some(p) = prefix {
            assert_eq!(p.layers.len(), cfg.layers, "prefix layer count mismatch");
        }
        let p_len = prefix.map_or(0, KvSegment::len);
        let s_len = suffix.len();

        let tag_at = |g: usize| -> SegTag {
            if g < p_len {
                prefix.unwrap().segs[g]
            } else {
                suffix.segs[g - p_len]
            }
        };

        let mut h: Vec<Vec<f32>> = suffix
            .tokens
            .iter()
            .map(|&t| self.weights.embedding.row(t as usize).to_vec())
            .collect();

        let mut suffix_kv = KvSegment::empty(cfg.layers, cfg.kv_dim());
        suffix_kv.segs = suffix.segs.clone();
        suffix_kv.pos = suffix.pos.clone();

        let scale = 1.0 / (cfg.head_dim as f32).sqrt();
        let group = cfg.gqa_group();

        for (l, lw) in self.weights.layers.iter().enumerate() {
            let mut qs: Vec<Vec<f32>> = Vec::with_capacity(s_len);
            for (t, ht) in h.iter().enumerate() {
                let xn = rms_norm(ht, &lw.attn_norm, 1e-6);
                let mut q = lw.wq.vecmul_sparse(&xn);
                let mut k = lw.wk.vecmul_sparse(&xn);
                let v = lw.wv.vecmul_sparse(&xn);
                let pos = suffix.pos[t] as usize;
                for qh in 0..cfg.query_heads {
                    self.rope
                        .apply(&mut q[qh * cfg.head_dim..(qh + 1) * cfg.head_dim], pos);
                }
                for kh in 0..cfg.kv_heads {
                    self.rope
                        .apply(&mut k[kh * cfg.head_dim..(kh + 1) * cfg.head_dim], pos);
                }
                suffix_kv.layers[l].push(&k, &v);
                qs.push(q);
            }

            for t in 0..s_len {
                let g_q = p_len + t;
                let q = &qs[t];
                let mut attn_out = vec![0.0f32; cfg.q_dim()];
                for qh in 0..cfg.query_heads {
                    let kv_head = qh / group;
                    let q_slice = &q[qh * cfg.head_dim..(qh + 1) * cfg.head_dim];
                    let mut idx: Vec<usize> = Vec::with_capacity(g_q + 1);
                    let mut logits: Vec<f32> = Vec::with_capacity(g_q + 1);
                    for g_k in 0..=g_q {
                        if !allowed(suffix.scheme, tag_at(g_q), tag_at(g_k)) {
                            continue;
                        }
                        let key_row = if g_k < p_len {
                            prefix.unwrap().layers[l].key(g_k)
                        } else {
                            suffix_kv.layers[l].key(g_k - p_len)
                        };
                        let ks = &key_row[kv_head * cfg.head_dim..(kv_head + 1) * cfg.head_dim];
                        idx.push(g_k);
                        logits.push(dot(q_slice, ks) * scale);
                    }
                    stable_softmax_in_place(&mut logits);
                    let out = &mut attn_out[qh * cfg.head_dim..(qh + 1) * cfg.head_dim];
                    for (w, &g_k) in logits.iter().zip(&idx) {
                        if *w == 0.0 {
                            continue;
                        }
                        let val_row = if g_k < p_len {
                            prefix.unwrap().layers[l].value(g_k)
                        } else {
                            suffix_kv.layers[l].value(g_k - p_len)
                        };
                        let vs = &val_row[kv_head * cfg.head_dim..(kv_head + 1) * cfg.head_dim];
                        axpy(out, *w, vs);
                    }
                }
                let proj = lw.wo.vecmul_sparse(&attn_out);
                for (a, b) in h[t].iter_mut().zip(&proj) {
                    *a += b;
                }

                let xn2 = rms_norm(&h[t], &lw.ffn_norm, 1e-6);
                let gate = lw.w_gate.vecmul_sparse(&xn2);
                let up = lw.w_up.vecmul_sparse(&xn2);
                let act: Vec<f32> = gate.iter().zip(&up).map(|(&g, &u)| silu(g) * u).collect();
                let down = lw.w_down.vecmul_sparse(&act);
                for (a, b) in h[t].iter_mut().zip(&down) {
                    *a += b;
                }
            }
        }

        let hidden_all: Vec<Vec<f32>> = h
            .iter()
            .map(|ht| rms_norm(ht, &self.weights.final_norm, 1e-6))
            .collect();
        let hidden_last = hidden_all.last().cloned().unwrap();
        let logits: Vec<f32> = (0..cfg.vocab_size)
            .map(|i| dot(self.weights.embedding.row(i), &hidden_last))
            .collect();

        ForwardOutput {
            hidden_last,
            hidden_all,
            suffix_kv,
            logits,
        }
    }

    /// The multi-discriminant read-out (§4.2's "one discriminant token per
    /// item" extension): for a suffix laid out by
    /// [`crate::PromptLayout::build_per_item_discriminants`], scores
    /// candidate `i` as `softmax_i ⟨E[v_i], h(Disc(i))⟩` — each candidate
    /// from its own discriminant's hidden state.
    ///
    /// # Panics
    ///
    /// Panics if the suffix does not contain exactly one [`SegTag::Disc`]
    /// token per candidate.
    pub fn candidate_scores_per_discriminant(
        &self,
        suffix: &TokenSeq,
        out: &ForwardOutput,
        candidate_tokens: &[u32],
    ) -> Vec<f32> {
        let mut scores = vec![f32::NEG_INFINITY; candidate_tokens.len()];
        let mut found = 0usize;
        for (t, &tag) in suffix.segs.iter().enumerate() {
            if let SegTag::Disc(i) = tag {
                let i = i as usize;
                assert!(i < candidate_tokens.len(), "discriminant beyond candidates");
                scores[i] = dot(
                    self.weights.embedding.row(candidate_tokens[i] as usize),
                    &out.hidden_all[t],
                );
                found += 1;
            }
        }
        assert_eq!(
            found,
            candidate_tokens.len(),
            "one discriminant per candidate required"
        );
        stable_softmax_in_place(&mut scores);
        scores
    }
}

use crate::prompt::allowed_tags as allowed;

/// Block tags of the combined `[prefix ++ suffix]` context.
pub(crate) fn combined_tags(suffix: &TokenSeq, prefix: Option<&KvSegment>) -> Vec<SegTag> {
    let p_len = prefix.map_or(0, KvSegment::len);
    (0..p_len + suffix.len())
        .map(|g| {
            if g < p_len {
                prefix.unwrap().segs[g]
            } else {
                suffix.segs[g - p_len]
            }
        })
        .collect()
}

/// One bipartite-mask row per suffix token, covering its causal window
/// `0..=p_len + t`. Masks depend only on tags and the scheme, never on the
/// layer or head, so each forward pass builds them exactly once.
pub(crate) fn build_mask_rows(
    scheme: crate::prompt::MaskScheme,
    tags: &[SegTag],
    p_len: usize,
    s_len: usize,
) -> Vec<Vec<bool>> {
    parallel_map_indexed(s_len, 8, |t| {
        let tq = tags[p_len + t];
        (0..=p_len + t)
            .map(|g| allowed(scheme, tq, tags[g]))
            .collect()
    })
}

/// RMS-normalizes every row of `h` with `gain`, in parallel.
pub(crate) fn norm_rows(h: &Matrix, gain: &[f32]) -> Matrix {
    let mut out = Matrix::zeros(h.rows(), h.cols());
    out.par_rows_mut(4, |t, row| {
        row.copy_from_slice(&rms_norm(h.row(t), gain, 1e-6));
    });
    out
}

/// Packs one layer's keys/values over `[prefix ++ suffix]` into per-KV-head
/// **transposed** matrices (`d × g_len`): row `c` of head `kh` holds
/// component `c` of every position's key (resp. value). The attention
/// kernels then sweep contiguous rows instead of strided columns.
pub(crate) fn pack_kv_transposed(
    kv_heads: usize,
    d: usize,
    g_len: usize,
    prefix: Option<&crate::kv::LayerKv>,
    k: &Matrix,
    v: &Matrix,
) -> (Vec<Matrix>, Vec<Matrix>) {
    let p_len = prefix.map_or(0, crate::kv::LayerKv::len);
    let mut keys_t = Vec::with_capacity(kv_heads);
    let mut vals_t = Vec::with_capacity(kv_heads);
    for kh in 0..kv_heads {
        let lo = kh * d;
        let mut kt = Matrix::zeros(d, g_len);
        let mut vt = Matrix::zeros(d, g_len);
        for g in 0..p_len {
            let p = prefix.unwrap();
            let (key, val) = (p.key(g), p.value(g));
            for c in 0..d {
                kt.row_mut(c)[g] = key[lo + c];
                vt.row_mut(c)[g] = val[lo + c];
            }
        }
        for t in 0..g_len - p_len {
            let (key, val) = (k.row(t), v.row(t));
            for c in 0..d {
                kt.row_mut(c)[p_len + t] = key[lo + c];
                vt.row_mut(c)[p_len + t] = val[lo + c];
            }
        }
        keys_t.push(kt);
        vals_t.push(vt);
    }
    (keys_t, vals_t)
}

/// Softmax attention of **all** query heads for one token, over
/// transposed-packed per-KV-head keys/values and the token's bipartite-mask
/// row (whose length is the causal window). Adaptive: when at least a
/// quarter of the window is allowed, each head scores the whole window with
/// vectorized axpy sweeps and masks by `-inf` (under
/// [`stable_softmax_fast_in_place`] a masked slot carries weight ≲ 1e-38 —
/// zero at f32 accumulation scale); otherwise the allowed positions are
/// gathered **once per token** into contiguous per-KV-head buffers that
/// all heads then sweep branch-free (under the item-prefix layout a sparse
/// row allows ~10 of ~200 positions, so the per-head cost used to be pure
/// gather/alloc overhead — hoisting it was worth ~25 % of the attention
/// stage). The path choice depends only on the mask row, so results are
/// thread-count-independent either way.
// Flat scalar/slice args: this sits inside the parallel per-token closure,
// and bundling them into a struct would just move the construction cost
// into the hot loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attend_token(
    q_row: &[f32],
    keys_t: &[Matrix],
    vals_t: &[Matrix],
    mask: &[bool],
    group: usize,
    d: usize,
    scale: f32,
    out_row: &mut [f32],
) {
    let window = mask.len();
    let heads = q_row.len() / d;
    let allowed = mask.iter().filter(|&&b| b).count();
    if allowed * 4 >= window {
        let mut s = vec![0.0f32; window];
        for qh in 0..heads {
            let (kt, vt) = (&keys_t[qh / group], &vals_t[qh / group]);
            let qv = &q_row[qh * d..(qh + 1) * d];
            s.fill(0.0);
            for (c, &qc) in qv.iter().enumerate() {
                axpy(&mut s, qc, &kt.row(c)[..window]);
            }
            for (sj, &ok) in s.iter_mut().zip(mask) {
                *sj = if ok { *sj * scale } else { f32::NEG_INFINITY };
            }
            stable_softmax_fast_in_place(&mut s);
            vt.rows_dot_acc(&s, &mut out_row[qh * d..(qh + 1) * d]);
        }
    } else {
        let idx: Vec<usize> = (0..window).filter(|&j| mask[j]).collect();
        let n = idx.len();
        if n == 0 {
            return; // fully-masked row: attention output stays zero
        }
        // Gathered K/V, packed `d × n` per KV head so the per-head loops
        // below run the same contiguous axpy/dot kernels as the dense path.
        let kv_heads = keys_t.len();
        let mut kg = vec![0.0f32; kv_heads * d * n];
        let mut vg = vec![0.0f32; kv_heads * d * n];
        for kh in 0..kv_heads {
            for c in 0..d {
                let (krow, vrow) = (keys_t[kh].row(c), vals_t[kh].row(c));
                let lo = (kh * d + c) * n;
                for (t, &j) in idx.iter().enumerate() {
                    kg[lo + t] = krow[j];
                    vg[lo + t] = vrow[j];
                }
            }
        }
        let mut s = vec![0.0f32; n];
        for qh in 0..heads {
            let kh = qh / group;
            let qv = &q_row[qh * d..(qh + 1) * d];
            s.fill(0.0);
            for (c, &qc) in qv.iter().enumerate() {
                let lo = (kh * d + c) * n;
                axpy(&mut s, qc, &kg[lo..lo + n]);
            }
            s.iter_mut().for_each(|x| *x *= scale);
            stable_softmax_fast_in_place(&mut s);
            let out = &mut out_row[qh * d..(qh + 1) * d];
            for (c, o) in out.iter_mut().enumerate() {
                let lo = (kh * d + c) * n;
                *o += dot_fast(&s, &vg[lo..lo + n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{MaskScheme, PromptLayout};
    use bat_types::PrefixKind;

    fn tiny_model(seed: u64) -> GrModel {
        GrModel::new(Weights::random(GrModelConfig::tiny(64), seed))
    }

    fn parts() -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
        (
            vec![40, 41, 42, 43, 44],
            vec![vec![0, 50], vec![1, 51], vec![2, 52], vec![3, 53]],
            vec![60, 61],
        )
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn forward_produces_finite_logits() {
        let model = tiny_model(3);
        let (u, i, s) = parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::User, &u, &i, &s);
        let out = model.forward(&seq, None);
        assert_eq!(out.logits.len(), 64);
        assert!(out.logits.iter().all(|v| v.is_finite()));
        let scores = out.candidate_scores(&[0, 1, 2, 3]);
        assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    /// The fundamental prefix-caching identity (§3.2): computing the prompt
    /// in one shot equals computing the prefix KV first and splicing it.
    #[test]
    fn prefix_cached_forward_equals_recompute_up() {
        let model = tiny_model(11);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::User, &u, &i, &s);

        let full = model.forward(&seq, None);

        let (user_block, rest) = seq.split_at(u.len());
        let prefix_kv = model.compute_kv(&user_block);
        let cached = model.forward(&rest, Some(&prefix_kv));

        assert!(max_diff(&full.hidden_last, &cached.hidden_last) < 1e-4);
        assert!(max_diff(&full.logits, &cached.logits) < 1e-3);
    }

    /// Same identity in the Item-as-prefix ordering, with the item block as
    /// the cached prefix.
    #[test]
    fn prefix_cached_forward_equals_recompute_ip() {
        let model = tiny_model(12);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let item_block_len = i.iter().map(Vec::len).sum::<usize>();

        let full = model.forward(&seq, None);
        let (item_block, rest) = seq.split_at(item_block_len);
        let prefix_kv = model.compute_kv(&item_block);
        let cached = model.forward(&rest, Some(&prefix_kv));

        assert!(max_diff(&full.hidden_last, &cached.hidden_last) < 1e-4);
        assert!(max_diff(&full.logits, &cached.logits) < 1e-3);
    }

    /// §4.2/§4.3: under the bipartite scheme, an item's KV computed
    /// standalone equals its KV inside the full IP prompt — the property
    /// that makes cross-user item-cache sharing sound.
    #[test]
    fn item_kv_is_context_independent_under_bipartite() {
        let model = tiny_model(13);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let full = model.forward(&seq, None);

        // Item 2 occupies tokens 4..6 of the prompt.
        let standalone = layout.item_standalone(2, &i[2], 0);
        let solo_kv = model.compute_kv(&standalone);
        for l in 0..model.config().layers {
            for (t, g) in (4..6).enumerate() {
                assert!(max_diff(full.suffix_kv.layers[l].key(g), solo_kv.layers[l].key(t)) < 1e-5);
                assert!(
                    max_diff(
                        full.suffix_kv.layers[l].value(g),
                        solo_kv.layers[l].value(t)
                    ) < 1e-5
                );
            }
        }
    }

    /// Under the naive causal scheme the same item's KV *does* depend on
    /// context (positions shift and earlier tokens leak in), which is the
    /// paper's §3.3 argument for why vanilla prefix caching cannot share
    /// item caches.
    #[test]
    fn item_kv_is_context_dependent_under_naive() {
        let model = tiny_model(13);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::NaiveCausal);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let full = model.forward(&seq, None);

        let standalone = layout.item_standalone(2, &i[2], 0);
        let solo_kv = model.compute_kv(&standalone);
        // Item 2 occupies tokens 4..6; its position there is 4, not 0.
        let mut differs = false;
        for l in 0..model.config().layers {
            if max_diff(full.suffix_kv.layers[l].key(4), solo_kv.layers[l].key(0)) > 1e-3 {
                differs = true;
            }
        }
        assert!(differs, "naive-causal item KV should be context-dependent");
    }

    /// Candidate order inside the item block must not matter under the
    /// bipartite scheme: permuting items permutes scores identically.
    #[test]
    fn item_permutation_invariance_of_scores() {
        let model = tiny_model(21);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);

        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let scores = model.forward(&seq, None).candidate_scores(&[0, 1, 2, 3]);

        let permuted: Vec<Vec<u32>> = vec![i[2].clone(), i[0].clone(), i[3].clone(), i[1].clone()];
        let seq_p = layout.build(PrefixKind::Item, &u, &permuted, &s);
        let scores_p = model.forward(&seq_p, None).candidate_scores(&[2, 0, 3, 1]);

        assert!(max_diff(&[scores[2], scores[0], scores[3], scores[1]], &scores_p) < 1e-4);
    }

    /// §6.1 stores KV in FP16: a prefix cache quantized to half precision
    /// must not change candidate scores materially.
    #[test]
    fn fp16_prefix_cache_barely_moves_scores() {
        let model = tiny_model(17);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let item_block: usize = i.iter().map(Vec::len).sum();
        let (head, rest) = seq.split_at(item_block);

        let exact_kv = model.compute_kv(&head);
        let mut fp16_kv = exact_kv.clone();
        let err = fp16_kv.quantize_fp16();
        assert!(err > 0.0, "quantization should not be a no-op");

        let exact = model
            .forward(&rest, Some(&exact_kv))
            .candidate_scores(&[0, 1, 2, 3]);
        let quant = model
            .forward(&rest, Some(&fp16_kv))
            .candidate_scores(&[0, 1, 2, 3]);
        let drift = max_diff(&exact, &quant);
        assert!(drift < 1e-3, "fp16 KV drifted scores by {drift}");
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_suffix_rejected() {
        let model = tiny_model(1);
        let seq = TokenSeq {
            tokens: vec![],
            segs: vec![],
            pos: vec![],
            scheme: MaskScheme::Bipartite,
        };
        let _ = model.forward(&seq, None);
    }

    /// The batched/parallel forward agrees with the seed's serial
    /// per-token oracle for both prefix orderings, with and without a
    /// spliced prefix cache.
    #[test]
    fn batched_forward_matches_reference_oracle() {
        let model = tiny_model(29);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        for kind in [PrefixKind::User, PrefixKind::Item] {
            let seq = layout.build(kind, &u, &i, &s);
            let new = model.forward(&seq, None);
            let old = model.forward_reference(&seq, None);
            assert!(
                max_diff(&new.logits, &old.logits) < 1e-3,
                "{kind}: batched forward diverged from the seed oracle"
            );
            assert!(max_diff(&new.hidden_last, &old.hidden_last) < 1e-4);
            assert!(new.suffix_kv.max_abs_diff(&old.suffix_kv).unwrap() < 1e-5);

            let prefix_len = match kind {
                PrefixKind::User => u.len(),
                PrefixKind::Item => i.iter().map(Vec::len).sum(),
            };
            let (head, tail) = seq.split_at(prefix_len);
            let kv = model.compute_kv(&head);
            let new_c = model.forward(&tail, Some(&kv));
            let old_c = model.forward_reference(&tail, Some(&kv));
            assert!(
                max_diff(&new_c.logits, &old_c.logits) < 1e-3,
                "{kind}: cached batched forward diverged from the seed oracle"
            );
        }
    }

    /// The parallel forward must be bit-identical to its own serial run —
    /// the determinism contract of the execution layer.
    #[test]
    fn forward_is_bit_identical_across_thread_counts() {
        let model = tiny_model(31);
        let (u, i, s) = parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::Item, &u, &i, &s);
        bat_exec::set_threads(1);
        let gold = model.forward(&seq, None);
        for t in [2, 4, 8] {
            bat_exec::set_threads(t);
            let got = model.forward(&seq, None);
            assert!(
                gold.logits
                    .iter()
                    .zip(&got.logits)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{t} threads: logits diverged from serial"
            );
        }
        bat_exec::set_threads(1);
    }

    /// The routed construction has an all-zero FFN, so the structural-skip
    /// flag must be set there and clear for random weights.
    #[test]
    fn ffn_zero_flags_follow_weight_structure() {
        let random = tiny_model(1);
        assert!(random.ffn_zero.iter().all(|&z| !z));
        let cfg = GrModelConfig {
            query_heads: 2,
            kv_heads: 2,
            head_dim: 16,
            hidden_dim: 32,
            ..GrModelConfig::tiny(10)
        };
        let emb = bat_tensor::Matrix::zeros(10, 32);
        let mut marker = vec![0.0f32; 32];
        marker[0] = 1.0;
        let routed = GrModel::new(Weights::routed(cfg, emb, &marker, 0.5, 0.5));
        assert!(routed.ffn_zero.iter().all(|&z| z));
    }

    #[test]
    fn gqa_and_mha_configs_both_run() {
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::User, &u, &i, &s);
        for cfg in [GrModelConfig::tiny(64), GrModelConfig::small(64)] {
            let model = GrModel::new(Weights::random(cfg, 5));
            let out = model.forward(&seq, None);
            assert!(out.logits.iter().all(|v| v.is_finite()));
        }
    }
}
