//! Prompt layouts, attention masks and position-ID assignment (§4.2).
//!
//! A ranking prompt contains three block kinds: the user profile `U`, the
//! candidate items `I_1..I_N`, and the instruction `Instr`. Bipartite
//! Attention supports two *orderings* of these blocks ([`bat_types::PrefixKind`])
//! and two *schemes* ([`MaskScheme`]):
//!
//! * [`MaskScheme::NaiveCausal`] — plain causal attention with sequential
//!   position IDs, as a vanilla LLM would run. Under this scheme an item's KV
//!   depends on everything before it, so item entries cannot be shared.
//! * [`MaskScheme::Bipartite`] — the paper's co-design: cross-item attention
//!   is masked out (following HSTU), and every item block starts from the
//!   same position ID. Under this scheme an item's KV entry is a pure
//!   function of the item itself, which is what makes the item-prefix cache
//!   shareable across users.

use bat_types::PrefixKind;

/// Which prompt block a token belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegTag {
    /// User-profile block.
    User,
    /// Candidate item block, with the item's index in the candidate list.
    Item(u32),
    /// System-instruction block (includes the discriminant token in the
    /// single-discriminant layout).
    Instr,
    /// A per-item discriminant token (§4.2's "one discriminant token per
    /// item" extension): attends the shared context plus *its own* item
    /// only, so every candidate is scored by an independent read-out.
    Disc(u32),
}

/// The Bipartite Attention mask rule on block tags. Causal order is the
/// caller's responsibility (key index ≤ query index); this adds the
/// cross-item and cross-discriminant masking of §4.2.
#[inline]
pub fn allowed_tags(scheme: MaskScheme, q: SegTag, k: SegTag) -> bool {
    if scheme == MaskScheme::NaiveCausal {
        return true;
    }
    match (q, k) {
        // No cross-attention between items (following HSTU).
        (SegTag::Item(a), SegTag::Item(b)) => a == b,
        // A per-item discriminant reads only its own item...
        (SegTag::Disc(a), SegTag::Item(b)) => a == b,
        // ...and never another candidate's discriminant.
        (SegTag::Disc(a), SegTag::Disc(b)) => a == b,
        // Items never peek at discriminants (they trail the prompt, but the
        // rule holds even if a layout reordered them).
        (SegTag::Item(_), SegTag::Disc(_)) => false,
        _ => true,
    }
}

/// Attention-mask / position-ID scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskScheme {
    /// Plain causal mask, sequential positions (vanilla LLM).
    NaiveCausal,
    /// Bipartite Attention: causal ∧ no cross-item attention; items share a
    /// common starting position (§4.2).
    Bipartite,
}

/// A fully-laid-out token sequence: token IDs, block tags and position IDs.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenSeq {
    /// Vocabulary token IDs.
    pub tokens: Vec<u32>,
    /// Block tag of each token.
    pub segs: Vec<SegTag>,
    /// RoPE position ID of each token.
    pub pos: Vec<u32>,
    /// Scheme the positions/mask were generated under.
    pub scheme: MaskScheme,
}

impl TokenSeq {
    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether key position `k` may be attended by query position `q`.
    ///
    /// The rule is causal order plus — under [`MaskScheme::Bipartite`] — the
    /// cross-item (and cross-discriminant) mask of [`allowed_tags`].
    #[inline]
    pub fn allowed(&self, q: usize, k: usize) -> bool {
        k <= q && allowed_tags(self.scheme, self.segs[q], self.segs[k])
    }

    /// Dense `len × len` mask matrix (row = query, col = key).
    pub fn mask_matrix(&self) -> Vec<Vec<bool>> {
        (0..self.len())
            .map(|q| (0..self.len()).map(|k| self.allowed(q, k)).collect())
            .collect()
    }

    /// Splits off the leading `n` tokens as a prefix sequence, returning
    /// `(prefix, suffix)`.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_at(&self, n: usize) -> (TokenSeq, TokenSeq) {
        assert!(n <= self.len(), "split index out of range");
        let head = TokenSeq {
            tokens: self.tokens[..n].to_vec(),
            segs: self.segs[..n].to_vec(),
            pos: self.pos[..n].to_vec(),
            scheme: self.scheme,
        };
        let tail = TokenSeq {
            tokens: self.tokens[n..].to_vec(),
            segs: self.segs[n..].to_vec(),
            pos: self.pos[n..].to_vec(),
            scheme: self.scheme,
        };
        (head, tail)
    }

    /// Number of leading tokens whose block tag satisfies `pred`.
    pub fn leading_block_len(&self, pred: impl Fn(SegTag) -> bool) -> usize {
        self.segs.iter().take_while(|&&s| pred(s)).count()
    }
}

/// Builder for ranking-prompt layouts.
///
/// ```
/// use bat_model::prompt::{PromptLayout, MaskScheme, SegTag};
/// use bat_types::PrefixKind;
///
/// let user = vec![10, 11, 12];
/// let items = vec![vec![0, 20], vec![1, 21]];
/// let instr = vec![30, 31];
/// let seq = PromptLayout::new(MaskScheme::Bipartite)
///     .build(PrefixKind::Item, &user, &items, &instr);
///
/// // IP ordering: items first, then user, then instructions.
/// assert_eq!(seq.segs[0], SegTag::Item(0));
/// // Both items start from position 0 under the bipartite scheme.
/// assert_eq!(seq.pos[0], 0);
/// assert_eq!(seq.pos[2], 0);
/// ```
#[derive(Debug, Clone)]
pub struct PromptLayout {
    scheme: MaskScheme,
}

impl PromptLayout {
    /// Creates a layout builder for the given scheme.
    pub fn new(scheme: MaskScheme) -> Self {
        PromptLayout { scheme }
    }

    /// Lays out a full ranking prompt.
    ///
    /// * `PrefixKind::User` → `[U, I_1..I_N, Instr]`
    /// * `PrefixKind::Item` → `[I_1..I_N, U, Instr]`
    ///
    /// Position IDs under [`MaskScheme::Bipartite`]: every item starts at a
    /// common *items base* (0 for IP, `|U|` for UP, §4.2); the block after
    /// the items starts at `items_base + max_item_len` so that no position is
    /// ever attended from an earlier position ID.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn build(
        &self,
        prefix: PrefixKind,
        user_tokens: &[u32],
        items: &[Vec<u32>],
        instr_tokens: &[u32],
    ) -> TokenSeq {
        assert!(!items.is_empty(), "a ranking prompt needs candidate items");
        let mut tokens = Vec::new();
        let mut segs = Vec::new();
        let mut pos = Vec::new();
        let max_item_len = items.iter().map(Vec::len).max().unwrap_or(0) as u32;

        let push_user =
            |tokens: &mut Vec<u32>, segs: &mut Vec<SegTag>, pos: &mut Vec<u32>, base: u32| {
                for (j, &t) in user_tokens.iter().enumerate() {
                    tokens.push(t);
                    segs.push(SegTag::User);
                    pos.push(base + j as u32);
                }
                base + user_tokens.len() as u32
            };
        let push_items = |tokens: &mut Vec<u32>,
                          segs: &mut Vec<SegTag>,
                          pos: &mut Vec<u32>,
                          base: u32,
                          scheme: MaskScheme,
                          seq_start: u32|
         -> u32 {
            let mut running = seq_start;
            for (i, item) in items.iter().enumerate() {
                for (j, &t) in item.iter().enumerate() {
                    tokens.push(t);
                    segs.push(SegTag::Item(i as u32));
                    pos.push(match scheme {
                        // Every item restarts from the common base (§4.2).
                        MaskScheme::Bipartite => base + j as u32,
                        // Vanilla: positions simply run on.
                        MaskScheme::NaiveCausal => running,
                    });
                    running += 1;
                }
            }
            match scheme {
                MaskScheme::Bipartite => base + max_item_len,
                MaskScheme::NaiveCausal => running,
            }
        };

        match prefix {
            PrefixKind::User => {
                let after_user = match self.scheme {
                    MaskScheme::Bipartite => push_user(&mut tokens, &mut segs, &mut pos, 0),
                    MaskScheme::NaiveCausal => push_user(&mut tokens, &mut segs, &mut pos, 0),
                };
                let after_items = push_items(
                    &mut tokens,
                    &mut segs,
                    &mut pos,
                    after_user,
                    self.scheme,
                    after_user,
                );
                for (j, &t) in instr_tokens.iter().enumerate() {
                    tokens.push(t);
                    segs.push(SegTag::Instr);
                    pos.push(after_items + j as u32);
                }
            }
            PrefixKind::Item => {
                let after_items = push_items(&mut tokens, &mut segs, &mut pos, 0, self.scheme, 0);
                let after_user = push_user(&mut tokens, &mut segs, &mut pos, after_items);
                for (j, &t) in instr_tokens.iter().enumerate() {
                    tokens.push(t);
                    segs.push(SegTag::Instr);
                    pos.push(after_user + j as u32);
                }
            }
        }

        TokenSeq {
            tokens,
            segs,
            pos,
            scheme: self.scheme,
        }
    }

    /// Lays out a *standalone* item block, as the offline item-KV
    /// pre-computation does (§5.2 Step 3): the item's tokens with tag
    /// `Item(item_index)` starting at position `base`.
    pub fn item_standalone(&self, item_index: u32, item_tokens: &[u32], base: u32) -> TokenSeq {
        TokenSeq {
            tokens: item_tokens.to_vec(),
            segs: vec![SegTag::Item(item_index); item_tokens.len()],
            pos: (0..item_tokens.len() as u32).map(|j| base + j).collect(),
            scheme: self.scheme,
        }
    }

    /// Lays out a ranking prompt with **one discriminant token per item**
    /// (§4.2's multi-token extension): the base prompt from [`Self::build`]
    /// followed by `disc_tokens[i]` tagged [`SegTag::Disc`]`(i)`. All
    /// discriminants share one starting position (they are a set, like the
    /// items); each attends the shared context plus its own item only, so
    /// candidate `i`'s score can be read from its own discriminant's
    /// hidden state.
    ///
    /// # Panics
    ///
    /// Panics if `disc_tokens.len() != items.len()` or `items` is empty.
    pub fn build_per_item_discriminants(
        &self,
        prefix: PrefixKind,
        user_tokens: &[u32],
        items: &[Vec<u32>],
        instr_tokens: &[u32],
        disc_tokens: &[u32],
    ) -> TokenSeq {
        assert_eq!(
            disc_tokens.len(),
            items.len(),
            "one discriminant token per item"
        );
        let mut seq = self.build(prefix, user_tokens, items, instr_tokens);
        let base = seq.pos.iter().copied().max().map_or(0, |p| p + 1);
        for (i, &t) in disc_tokens.iter().enumerate() {
            seq.tokens.push(t);
            seq.segs.push(SegTag::Disc(i as u32));
            seq.pos.push(match self.scheme {
                // Discriminants are a set: shared starting position.
                MaskScheme::Bipartite => base,
                MaskScheme::NaiveCausal => base + i as u32,
            });
        }
        seq
    }

    /// Lays out a standalone user block starting at position 0, as the
    /// user-prefix cache computation does.
    pub fn user_standalone(&self, user_tokens: &[u32]) -> TokenSeq {
        TokenSeq {
            tokens: user_tokens.to_vec(),
            segs: vec![SegTag::User; user_tokens.len()],
            pos: (0..user_tokens.len() as u32).collect(),
            scheme: self.scheme,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_parts() -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
        (
            vec![100, 101, 102],
            vec![vec![0, 50], vec![1, 51, 52], vec![2]],
            vec![200, 201],
        )
    }

    #[test]
    fn up_ordering_is_user_items_instr() {
        let (u, i, s) = sample_parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::User, &u, &i, &s);
        assert_eq!(seq.segs[0], SegTag::User);
        assert_eq!(seq.segs[3], SegTag::Item(0));
        assert_eq!(*seq.segs.last().unwrap(), SegTag::Instr);
        assert_eq!(seq.len(), 3 + 6 + 2);
    }

    #[test]
    fn ip_ordering_is_items_user_instr() {
        let (u, i, s) = sample_parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::Item, &u, &i, &s);
        assert_eq!(seq.segs[0], SegTag::Item(0));
        assert_eq!(seq.segs[6], SegTag::User);
        assert_eq!(*seq.segs.last().unwrap(), SegTag::Instr);
    }

    #[test]
    fn bipartite_items_share_start_position() {
        let (u, i, s) = sample_parts();
        // UP: items start at |U| = 3.
        let up = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::User, &u, &i, &s);
        assert_eq!(up.pos[3], 3); // first token of item 0
        assert_eq!(up.pos[5], 3); // first token of item 1
        assert_eq!(up.pos[8], 3); // item 2
                                  // IP: items start at 0; user starts at max_item_len = 3.
        let ip = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::Item, &u, &i, &s);
        assert_eq!(ip.pos[0], 0);
        assert_eq!(ip.pos[2], 0);
        assert_eq!(ip.pos[5], 0);
        assert_eq!(ip.pos[6], 3); // user base = max item len
    }

    #[test]
    fn naive_positions_are_sequential() {
        let (u, i, s) = sample_parts();
        let seq = PromptLayout::new(MaskScheme::NaiveCausal).build(PrefixKind::Item, &u, &i, &s);
        let expect: Vec<u32> = (0..seq.len() as u32).collect();
        assert_eq!(seq.pos, expect);
    }

    #[test]
    fn bipartite_mask_blocks_cross_item() {
        let (u, i, s) = sample_parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::Item, &u, &i, &s);
        // Token 2 is in item 1, token 0 is in item 0: masked.
        assert!(!seq.allowed(2, 0));
        // Within item 1: allowed causally.
        assert!(seq.allowed(3, 2));
        // User token sees all items.
        assert!(seq.allowed(6, 0) && seq.allowed(6, 5));
        // Instruction token sees everything before it.
        let last = seq.len() - 1;
        assert!((0..last).all(|k| seq.allowed(last, k)));
    }

    #[test]
    fn naive_mask_is_pure_causal() {
        let (u, i, s) = sample_parts();
        let seq = PromptLayout::new(MaskScheme::NaiveCausal).build(PrefixKind::Item, &u, &i, &s);
        for q in 0..seq.len() {
            for k in 0..seq.len() {
                assert_eq!(seq.allowed(q, k), k <= q);
            }
        }
    }

    #[test]
    fn split_preserves_content() {
        let (u, i, s) = sample_parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::User, &u, &i, &s);
        let (head, tail) = seq.split_at(3);
        assert_eq!(head.len(), 3);
        assert_eq!(tail.len(), seq.len() - 3);
        assert_eq!(head.tokens, vec![100, 101, 102]);
        assert_eq!(tail.segs[0], SegTag::Item(0));
    }

    #[test]
    fn standalone_item_matches_in_prompt_positions() {
        let (u, i, s) = sample_parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let ip = layout.build(PrefixKind::Item, &u, &i, &s);
        let standalone = layout.item_standalone(1, &i[1], 0);
        // Item 1 occupies indices 2..5 of the IP prompt.
        assert_eq!(&ip.tokens[2..5], standalone.tokens.as_slice());
        assert_eq!(&ip.pos[2..5], standalone.pos.as_slice());
    }

    #[test]
    fn leading_block_len_counts_prefix() {
        let (u, i, s) = sample_parts();
        let ip = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::Item, &u, &i, &s);
        assert_eq!(ip.leading_block_len(|t| matches!(t, SegTag::Item(_))), 6);
        let up = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::User, &u, &i, &s);
        assert_eq!(up.leading_block_len(|t| t == SegTag::User), 3);
    }

    #[test]
    fn per_item_discriminants_layout_and_mask() {
        let (u, i, s) = sample_parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build_per_item_discriminants(PrefixKind::User, &u, &i, &s, &[90, 91, 92]);
        let base_len = 3 + 6 + 2;
        assert_eq!(seq.len(), base_len + 3);
        // Discriminants trail the prompt and share one starting position.
        assert_eq!(seq.segs[base_len], SegTag::Disc(0));
        assert_eq!(seq.segs[base_len + 2], SegTag::Disc(2));
        assert_eq!(seq.pos[base_len], seq.pos[base_len + 1]);
        assert_eq!(seq.pos[base_len], seq.pos[base_len + 2]);

        // Disc(1) attends user, instr and item 1 only.
        let d1 = base_len + 1;
        assert!(seq.allowed(d1, 0), "disc attends user");
        assert!(seq.allowed(d1, base_len - 1), "disc attends instr");
        let item1_first = 3 + i[0].len(); // first token of item 1
        assert!(seq.allowed(d1, item1_first), "disc attends own item");
        assert!(!seq.allowed(d1, 3), "disc must not attend item 0");
        assert!(!seq.allowed(d1, base_len), "disc must not attend disc 0");
    }

    #[test]
    #[should_panic(expected = "one discriminant token per item")]
    fn per_item_discriminants_arity_checked() {
        let (u, i, s) = sample_parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let _ = layout.build_per_item_discriminants(PrefixKind::User, &u, &i, &s, &[90]);
    }

    #[test]
    fn allowed_tags_rule_table() {
        use MaskScheme::*;
        // Naive: everything goes.
        assert!(allowed_tags(NaiveCausal, SegTag::Item(0), SegTag::Item(1)));
        // Bipartite: cross-item and cross-disc blocked, same-index allowed.
        assert!(!allowed_tags(Bipartite, SegTag::Item(0), SegTag::Item(1)));
        assert!(allowed_tags(Bipartite, SegTag::Item(2), SegTag::Item(2)));
        assert!(!allowed_tags(Bipartite, SegTag::Disc(0), SegTag::Item(1)));
        assert!(allowed_tags(Bipartite, SegTag::Disc(1), SegTag::Item(1)));
        assert!(!allowed_tags(Bipartite, SegTag::Disc(0), SegTag::Disc(1)));
        assert!(allowed_tags(Bipartite, SegTag::Disc(0), SegTag::User));
        assert!(allowed_tags(Bipartite, SegTag::Disc(0), SegTag::Instr));
        assert!(!allowed_tags(Bipartite, SegTag::Item(0), SegTag::Disc(0)));
        assert!(allowed_tags(Bipartite, SegTag::Instr, SegTag::User));
    }

    #[test]
    #[should_panic(expected = "needs candidate items")]
    fn empty_items_rejected() {
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let _ = layout.build(PrefixKind::User, &[1], &[], &[2]);
    }

    proptest! {
        /// Both orderings contain exactly the same multiset of tokens.
        #[test]
        fn orderings_are_permutations(
            user in proptest::collection::vec(0u32..100, 0..10),
            items in proptest::collection::vec(proptest::collection::vec(0u32..100, 1..4), 1..6),
            instr in proptest::collection::vec(0u32..100, 0..4),
        ) {
            let layout = PromptLayout::new(MaskScheme::Bipartite);
            let up = layout.build(PrefixKind::User, &user, &items, &instr);
            let ip = layout.build(PrefixKind::Item, &user, &items, &instr);
            let mut a = up.tokens.clone();
            let mut b = ip.tokens.clone();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
            prop_assert_eq!(up.len(), ip.len());
        }

        /// Under the bipartite scheme, no key's position ID exceeds the
        /// position ID of a query that attends it — RoPE relative distances
        /// stay non-negative.
        #[test]
        fn attended_positions_never_exceed_query(
            user in proptest::collection::vec(0u32..100, 1..8),
            items in proptest::collection::vec(proptest::collection::vec(0u32..100, 1..4), 1..5),
            instr in proptest::collection::vec(0u32..100, 1..3),
            item_prefix in proptest::bool::ANY,
        ) {
            let layout = PromptLayout::new(MaskScheme::Bipartite);
            let kind = if item_prefix { PrefixKind::Item } else { PrefixKind::User };
            let seq = layout.build(kind, &user, &items, &instr);
            for q in 0..seq.len() {
                for k in 0..seq.len() {
                    if seq.allowed(q, k) {
                        prop_assert!(seq.pos[k] <= seq.pos[q],
                            "q={} (pos {}) attends k={} (pos {})", q, seq.pos[q], k, seq.pos[k]);
                    }
                }
            }
        }
    }
}
