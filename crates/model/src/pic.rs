//! Position-independent caching (PIC): CacheBlend-style selective recompute.
//!
//! §4.2/§6.3: when the base model is order-sensitive, Item-as-prefix
//! attention can degrade ranking quality, and the paper applies a
//! CacheBlend-like PIC algorithm that "selectively recomputes some critical
//! tokens" to narrow the gap.
//!
//! Our implementation mirrors CacheBlend's structure:
//!
//! 1. the item prefix is assembled from **cached, context-free** per-item KV
//!    segments (the fast path);
//! 2. a **reference** KV for the item tokens is computed *with the user
//!    context visible* (what full recomputation would have produced, up to
//!    the user block approximation);
//! 3. the tokens whose cached entries drift most from the reference are
//!    selected (top `recompute_fraction` by max K/V deviation) and their
//!    rows are replaced with the context-aware values;
//! 4. the rest of the prompt runs against the repaired prefix.
//!
//! At `recompute_fraction = 0` this is exactly plain IP; at `1.0` every item
//! token sees the user context (UP-like information flow at IP positions).

use crate::kv::KvSegment;
use crate::prompt::{MaskScheme, PromptLayout, SegTag, TokenSeq};
use crate::transformer::{ForwardOutput, GrModel};

/// Configuration for the PIC repair pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PicConfig {
    /// Fraction of item tokens to recompute with context (0.0..=1.0).
    /// CacheBlend reports ~10–20% suffices; the Table 3 harness uses 0.15.
    pub recompute_fraction: f32,
}

impl PicConfig {
    /// Creates a config, clamping the fraction into `[0, 1]`.
    pub fn new(recompute_fraction: f32) -> Self {
        PicConfig {
            recompute_fraction: recompute_fraction.clamp(0.0, 1.0),
        }
    }
}

/// Builds the item-prefix KV segment for an IP prompt with PIC repair.
///
/// `user_tokens` is the requesting user's profile block; `items` the
/// candidate token sequences. Returns the repaired concatenated item-block
/// segment (IP positions: every item starts at 0).
pub fn repaired_item_prefix(
    model: &GrModel,
    user_tokens: &[u32],
    items: &[Vec<u32>],
    pic: PicConfig,
) -> KvSegment {
    let layout = PromptLayout::new(MaskScheme::Bipartite);
    let max_item_len = items.iter().map(Vec::len).max().unwrap_or(0) as u32;

    // 1. Cached, context-free per-item KV (what the item cache pool holds).
    let cached: Vec<KvSegment> = items
        .iter()
        .enumerate()
        .map(|(i, it)| model.compute_kv(&layout.item_standalone(i as u32, it, 0)))
        .collect();
    let cached_refs: Vec<&KvSegment> = cached.iter().collect();
    let mut prefix = KvSegment::concat(&cached_refs);

    if pic.recompute_fraction <= 0.0 || user_tokens.is_empty() {
        return prefix;
    }

    // 2. Reference KV: each item recomputed with the user block visible.
    //    The user block sits at its IP position (after the items).
    let user_seq = TokenSeq {
        tokens: user_tokens.to_vec(),
        segs: vec![SegTag::User; user_tokens.len()],
        pos: (0..user_tokens.len() as u32)
            .map(|j| max_item_len + j)
            .collect(),
        scheme: MaskScheme::Bipartite,
    };
    let user_kv = model.compute_kv(&user_seq);
    let reference: Vec<KvSegment> = items
        .iter()
        .enumerate()
        .map(|(i, it)| {
            let seq = layout.item_standalone(i as u32, it, 0);
            model.forward(&seq, Some(&user_kv)).suffix_kv
        })
        .collect();
    let reference_refs: Vec<&KvSegment> = reference.iter().collect();
    let reference = KvSegment::concat(&reference_refs);

    // 3. Select the highest-drift tokens and splice the reference rows in.
    let drift = prefix.token_drift(&reference);
    let total = drift.len();
    let n_recompute = ((pic.recompute_fraction * total as f32).ceil() as usize).min(total);
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by(|&a, &b| drift[b].partial_cmp(&drift[a]).unwrap());
    for &t in order.iter().take(n_recompute) {
        for l in 0..prefix.layers.len() {
            let key = reference.layers[l].key(t);
            let value = reference.layers[l].value(t);
            prefix.layers[l].set_row(t, &key, &value);
        }
    }
    prefix
}

/// Scores an IP-ordered ranking prompt with PIC repair, returning the full
/// forward output (use [`ForwardOutput::candidate_scores`] on it).
pub fn forward_ip_with_pic(
    model: &GrModel,
    user_tokens: &[u32],
    items: &[Vec<u32>],
    instr_tokens: &[u32],
    pic: PicConfig,
) -> ForwardOutput {
    let layout = PromptLayout::new(MaskScheme::Bipartite);
    let seq = layout.build(
        bat_types::PrefixKind::Item,
        user_tokens,
        items,
        instr_tokens,
    );
    let item_block_len: usize = items.iter().map(Vec::len).sum();
    let (_, rest) = seq.split_at(item_block_len);
    let prefix = repaired_item_prefix(model, user_tokens, items, pic);
    model.forward(&rest, Some(&prefix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GrModelConfig;
    use crate::weights::Weights;
    use bat_types::PrefixKind;

    fn model() -> GrModel {
        GrModel::new(Weights::random(GrModelConfig::tiny(64), 33))
    }

    fn parts() -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
        (
            vec![40, 41, 42, 43],
            vec![vec![0, 50], vec![1, 51], vec![2, 52]],
            vec![60, 61],
        )
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn zero_fraction_equals_plain_ip() {
        let m = model();
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let plain = m.forward(&seq, None);
        let pic = forward_ip_with_pic(&m, &u, &i, &s, PicConfig::new(0.0));
        assert!(max_diff(&plain.logits, &pic.logits) < 1e-3);
    }

    #[test]
    fn full_fraction_changes_item_entries() {
        let m = model();
        let (u, i, _) = parts();
        let plain = repaired_item_prefix(&m, &u, &i, PicConfig::new(0.0));
        let full = repaired_item_prefix(&m, &u, &i, PicConfig::new(1.0));
        let drift = plain.token_drift(&full);
        // Layer-0 KV depends only on embeddings+positions, but deeper layers
        // must differ once the user context is visible.
        assert!(
            drift.iter().any(|&d| d > 1e-4),
            "context-aware recompute should change KV entries"
        );
    }

    #[test]
    fn fraction_is_monotone_in_entries_replaced() {
        let m = model();
        let (u, i, _) = parts();
        let base = repaired_item_prefix(&m, &u, &i, PicConfig::new(0.0));
        let mut prev_changed = 0usize;
        for frac in [0.2f32, 0.5, 1.0] {
            let repaired = repaired_item_prefix(&m, &u, &i, PicConfig::new(frac));
            let drift = base.token_drift(&repaired);
            let changed = drift.iter().filter(|&&d| d > 1e-6).count();
            assert!(
                changed >= prev_changed,
                "higher fraction should replace at least as many entries"
            );
            prev_changed = changed;
        }
    }

    #[test]
    fn config_clamps_fraction() {
        assert_eq!(PicConfig::new(2.0).recompute_fraction, 1.0);
        assert_eq!(PicConfig::new(-1.0).recompute_fraction, 0.0);
    }

    #[test]
    fn empty_user_degenerates_to_plain() {
        let m = model();
        let (_, i, _) = parts();
        let a = repaired_item_prefix(&m, &[], &i, PicConfig::new(0.5));
        let b = repaired_item_prefix(&m, &[], &i, PicConfig::new(0.0));
        assert_eq!(a.max_abs_diff(&b), Some(0.0));
    }
}
