//! HSTU-style Generative Recommender (the §4.2 "Extending to HSTU" claim).
//!
//! HSTU (Zhai et al., ICML'24) replaces the softmax transformer block with a
//! *pointwise aggregated attention* unit: gated SiLU projections, SiLU
//! attention weights normalized by context size instead of softmax, and an
//! elementwise gate on the aggregated value. The paper argues Bipartite
//! Attention carries over because HSTU shares the same causal-attention
//! formulation; this module substantiates that claim with a runnable
//! HSTU-style model over the **same** prompt-layout, mask and KV-segment
//! machinery as the LLM-style [`crate::GrModel`]:
//!
//! * the layer is `y = W_O(norm(A·V) ⊙ U)` with
//!   `A_ij = SiLU(⟨q_i, k_j⟩/√d) / |allowed(i)|` over the bipartite mask;
//! * RoPE is applied to queries/keys at the layout's position IDs (HSTU
//!   uses relative positional bias; rotary encoding is the equivalent
//!   relative mechanism already used throughout this workspace);
//! * item KV entries are context-independent under the bipartite scheme,
//!   and prefix-cached forwards equal recomputation — the same structural
//!   properties, verified by the same kind of tests.

use crate::config::GrModelConfig;
use crate::kv::KvSegment;
use crate::prompt::TokenSeq;
use crate::transformer::{norm_rows_into, ForwardOutput, ForwardWorkspace, MaskBuf};
use bat_exec::with_thread_scratch;
use bat_tensor::ops::{axpy, fast_silu, fast_silu_in_place, rms_norm_into};
use bat_tensor::{Matrix, RopeTable, SplitCols};
use rand::{rngs::SmallRng, SeedableRng};

/// Weights of one HSTU layer.
#[derive(Debug, Clone)]
pub struct HstuLayer {
    /// RMSNorm gain at the layer input.
    pub norm: Vec<f32>,
    /// Elementwise-gate projection `U`, `hidden × hidden`.
    pub wu: Matrix,
    /// Value projection, `hidden × kv_dim`.
    pub wv: Matrix,
    /// Query projection, `hidden × q_dim`.
    pub wq: Matrix,
    /// Key projection, `hidden × kv_dim`.
    pub wk: Matrix,
    /// Output projection, `hidden × hidden`.
    pub wo: Matrix,
}

/// An HSTU-style GR model sharing the workspace's prompt machinery.
///
/// ```
/// use bat_model::{GrModelConfig, HstuModel, MaskScheme, PromptLayout};
/// use bat_types::PrefixKind;
///
/// let cfg = GrModelConfig { query_heads: 2, kv_heads: 2, ..GrModelConfig::tiny(64) };
/// let model = HstuModel::random(cfg, 1);
/// let layout = PromptLayout::new(MaskScheme::Bipartite);
/// let seq = layout.build(PrefixKind::Item, &[40], &[vec![0], vec![1]], &[60]);
/// let out = model.forward(&seq, None);
/// assert!(out.logits.iter().all(|v| v.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct HstuModel {
    cfg: GrModelConfig,
    embedding: Matrix,
    layers: Vec<HstuLayer>,
    final_norm: Vec<f32>,
    rope: RopeTable,
    /// Transposed embedding (`hidden × vocab`) for the axpy-form tied
    /// output head, mirroring [`crate::GrModel`].
    embedding_t: Matrix,
}

impl HstuModel {
    /// Random (seeded) initialization.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GrModelConfig::validate`] or uses GQA
    /// (`query_heads != kv_heads`; HSTU's pointwise unit is single-group).
    pub fn random(cfg: GrModelConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid model config");
        assert_eq!(
            cfg.query_heads, cfg.kv_heads,
            "HSTU unit uses matched query/key heads"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let h = cfg.hidden_dim;
        let scale = (1.0 / h as f32).sqrt();
        let layers: Vec<HstuLayer> = (0..cfg.layers)
            .map(|_| HstuLayer {
                norm: vec![1.0; h],
                wu: Matrix::random(h, h, scale, &mut rng),
                wv: Matrix::random(h, cfg.kv_dim(), scale, &mut rng),
                wq: Matrix::random(h, cfg.q_dim(), scale, &mut rng),
                wk: Matrix::random(h, cfg.kv_dim(), scale, &mut rng),
                wo: Matrix::random(h, h, scale, &mut rng),
            })
            .collect();
        let rope = RopeTable::new(cfg.head_dim, cfg.max_positions, cfg.rope_base);
        let embedding = Matrix::random(cfg.vocab_size, h, 1.0, &mut rng);
        let embedding_t = embedding.transpose();
        HstuModel {
            embedding,
            layers,
            final_norm: vec![1.0; h],
            rope,
            cfg,
            embedding_t,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GrModelConfig {
        &self.cfg
    }

    /// Computes the KV segment of a standalone block (item/user prefix
    /// pre-computation), exactly like [`crate::GrModel::compute_kv`].
    pub fn compute_kv(&self, seq: &TokenSeq) -> KvSegment {
        self.forward(seq, None).suffix_kv
    }

    /// Runs the HSTU stack over `suffix`, optionally splicing a cached
    /// prefix KV segment, mirroring [`crate::GrModel::forward`] — including
    /// its batched, parallel execution: per-layer projections are one
    /// axpy-form `X·W` product each, and attention is mask-gathered per
    /// token (SiLU weights over allowed positions only, normalized by the
    /// allowed count), parallel over tokens with bit-identical results for
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `suffix` is empty or the prefix layer count mismatches.
    pub fn forward(&self, suffix: &TokenSeq, prefix: Option<&KvSegment>) -> ForwardOutput {
        let mut ws = ForwardWorkspace::new();
        self.forward_impl(suffix, prefix, &mut ws);
        ws.into_output()
    }

    /// [`HstuModel::forward`] into a caller-owned workspace, mirroring
    /// [`crate::GrModel::forward_with`]: a warmed workspace makes the
    /// steady-state HSTU forward allocation-free, with bit-identical
    /// results.
    pub fn forward_with<'w>(
        &self,
        suffix: &TokenSeq,
        prefix: Option<&KvSegment>,
        ws: &'w mut ForwardWorkspace,
    ) -> &'w ForwardOutput {
        self.forward_impl(suffix, prefix, ws);
        ws.output()
    }

    fn forward_impl(
        &self,
        suffix: &TokenSeq,
        prefix: Option<&KvSegment>,
        ws: &mut ForwardWorkspace,
    ) {
        assert!(!suffix.is_empty(), "forward needs at least one token");
        let cfg = &self.cfg;
        if let Some(p) = prefix {
            assert_eq!(p.layers.len(), cfg.layers, "prefix layer count mismatch");
        }
        let p_len = prefix.map_or(0, KvSegment::len);
        let s_len = suffix.len();
        let g_len = p_len + s_len;
        let d = cfg.head_dim;
        let scale = 1.0 / (d as f32).sqrt();

        // Workspace mapping: `act` holds the gated unit output and `up`
        // the elementwise gate `U` (the FFN slots, unused by HSTU).
        let ForwardWorkspace {
            tags,
            mask,
            h,
            xn,
            q,
            k,
            v,
            o,
            act,
            up,
            out,
            ..
        } = ws;
        let ForwardOutput {
            hidden_all,
            suffix_kv,
            logits,
        } = out;

        tags.clear();
        tags.extend((0..g_len).map(|g| {
            if g < p_len {
                prefix.unwrap().segs[g]
            } else {
                suffix.segs[g - p_len]
            }
        }));
        mask.build(suffix.scheme, tags, p_len, s_len);
        let grain = mask.attn_grain(cfg.q_dim());

        h.reset(s_len, cfg.hidden_dim);
        for (t, &tok) in suffix.tokens.iter().enumerate() {
            h.row_mut(t)
                .copy_from_slice(self.embedding.row(tok as usize));
        }
        suffix_kv.reset_for(cfg.layers, cfg.kv_dim());
        suffix_kv.segs.extend_from_slice(&suffix.segs);
        suffix_kv.pos.extend_from_slice(&suffix.pos);
        for lkv in suffix_kv.layers.iter_mut() {
            lkv.reserve(s_len);
        }

        for l in 0..cfg.layers {
            let lw = &self.layers[l];

            // Batched SiLU-gated projections for every suffix token, then
            // RoPE per row (SiLU first, as in the per-token formulation).
            norm_rows_into(h, &lw.norm, xn);
            xn.matmul_into(&lw.wq, q);
            xn.matmul_into(&lw.wk, k);
            xn.matmul_into(&lw.wv, v);
            xn.matmul_into(&lw.wu, up);
            for m in [&mut *q, &mut *k, &mut *v, &mut *up] {
                m.par_rows_mut(4, |_, row| fast_silu_in_place(row));
            }
            q.par_rows_mut(4, |t, row| {
                let pos = suffix.pos[t] as usize;
                for head in 0..cfg.query_heads {
                    self.rope.apply(&mut row[head * d..(head + 1) * d], pos);
                }
            });
            k.par_rows_mut(4, |t, row| {
                let pos = suffix.pos[t] as usize;
                for head in 0..cfg.kv_heads {
                    self.rope.apply(&mut row[head * d..(head + 1) * d], pos);
                }
            });
            for t in 0..s_len {
                suffix_kv.layers[l].push(k.row(t), v.row(t));
            }

            // Zero-copy split view over the packed [prefix ++ suffix]
            // blocks (HSTU is single-group: query_heads == kv_heads).
            let sl = &suffix_kv.layers[l];
            let kview = SplitCols::new(prefix.map(|p| p.layers[l].keys()), sl.keys());
            let vview = SplitCols::new(prefix.map(|p| p.layers[l].values()), sl.values());
            // Adaptive masked SiLU attention + count normalization +
            // elementwise gate, parallel over tokens (the softmax analogue
            // is `attend_token` in [`crate::transformer`]).
            act.reset(s_len, cfg.hidden_dim);
            let q_ro: &Matrix = q;
            let u_ro: &Matrix = up;
            let mask_ro: &MaskBuf = mask;
            act.par_rows_mut(grain, |t, grow| {
                let mask = mask_ro.row(t);
                let window = mask.len();
                let count = mask_ro.allowed(t);
                let q_row = q_ro.row(t);
                with_thread_scratch(|scr: &mut HstuScratch| {
                    let HstuScratch { s, agg, normed } = scr;
                    agg.clear();
                    agg.resize(cfg.kv_dim(), 0.0);
                    for head in 0..cfg.kv_heads {
                        let qv = &q_row[head * d..(head + 1) * d];
                        let out = &mut agg[head * d..(head + 1) * d];
                        if count * 4 >= window {
                            // Dense row: vectorized full-window sweep;
                            // masked positions get weight exactly 0.
                            s.clear();
                            s.resize(window, 0.0);
                            for (c, &qc) in qv.iter().enumerate() {
                                kview.axpy_plane(head * d + c, window, qc, s);
                            }
                            for (sj, &ok) in s.iter_mut().zip(mask) {
                                *sj = if ok { fast_silu(*sj * scale) } else { 0.0 };
                            }
                            vview.rows_dot_acc(head * d, s, out);
                        } else {
                            // Sparse row: gather only the allowed positions.
                            for j in (0..window).filter(|&j| mask[j]) {
                                let mut sc = 0.0f32;
                                for (c, &qc) in qv.iter().enumerate() {
                                    sc += qc * kview.at(head * d + c, j);
                                }
                                let w = fast_silu(sc * scale);
                                if w != 0.0 {
                                    for (c, o) in out.iter_mut().enumerate() {
                                        *o += w * vview.at(head * d + c, j);
                                    }
                                }
                            }
                        }
                    }
                    // Context-size normalization (HSTU's pointwise
                    // aggregation).
                    let inv = 1.0 / count.max(1) as f32;
                    agg.iter_mut().for_each(|x| *x *= inv);
                    normed.clear();
                    normed.resize(agg.len(), 0.0);
                    rms_norm_into(agg, &self.final_norm, 1e-6, normed);
                    for (slot, (a, g)) in grow.iter_mut().zip(normed.iter().zip(u_ro.row(t))) {
                        *slot = a * g;
                    }
                });
            });
            act.matmul_into(&lw.wo, o);
            let o_ro: &Matrix = o;
            h.par_rows_mut(8, |t, row| axpy(row, 1.0, o_ro.row(t)));
        }

        norm_rows_into(h, &self.final_norm, hidden_all);
        self.embedding_t
            .vecmul_into(hidden_all.row(s_len - 1), logits);
    }
}

/// Thread-local scratch of the HSTU attention closure: SiLU score row,
/// per-head aggregate, and its normalized copy. See
/// [`bat_exec::with_thread_scratch`].
#[derive(Default)]
struct HstuScratch {
    s: Vec<f32>,
    agg: Vec<f32>,
    normed: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{MaskScheme, PromptLayout};
    use bat_types::PrefixKind;

    fn hstu_cfg() -> GrModelConfig {
        GrModelConfig {
            query_heads: 2,
            kv_heads: 2,
            ..GrModelConfig::tiny(64)
        }
    }

    fn parts() -> (Vec<u32>, Vec<Vec<u32>>, Vec<u32>) {
        (
            vec![40, 41, 42, 43],
            vec![vec![0, 50], vec![1, 51], vec![2, 52]],
            vec![60, 61],
        )
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn forward_is_finite() {
        let model = HstuModel::random(hstu_cfg(), 3);
        let (u, i, s) = parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::Item, &u, &i, &s);
        let out = model.forward(&seq, None);
        assert!(out.logits.iter().all(|v| v.is_finite()));
        let scores = out.candidate_scores(&[0, 1, 2]);
        assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    /// The §3.2 prefix-cache identity holds for the HSTU block too.
    #[test]
    fn prefix_cached_forward_equals_recompute() {
        let model = HstuModel::random(hstu_cfg(), 11);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        for kind in [PrefixKind::User, PrefixKind::Item] {
            let seq = layout.build(kind, &u, &i, &s);
            let full = model.forward(&seq, None);
            let prefix_len = match kind {
                PrefixKind::User => u.len(),
                PrefixKind::Item => i.iter().map(Vec::len).sum(),
            };
            let (head, tail) = seq.split_at(prefix_len);
            let cached = model.forward(&tail, Some(&model.compute_kv(&head)));
            assert!(
                max_diff(&full.logits, &cached.logits) < 1e-3,
                "{kind}: HSTU cached forward must equal recomputation"
            );
        }
    }

    /// Item KV context-independence — the property that makes cross-user
    /// sharing sound — holds for HSTU under the bipartite scheme.
    #[test]
    fn item_kv_context_independent_under_bipartite() {
        let model = HstuModel::random(hstu_cfg(), 13);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let full = model.forward(&seq, None);
        let solo = model.compute_kv(&layout.item_standalone(1, &i[1], 0));
        for l in 0..model.config().layers {
            for (t, g) in (2..4).enumerate() {
                assert!(max_diff(&full.suffix_kv.layers[l].key(g), &solo.layers[l].key(t)) < 1e-5);
                assert!(
                    max_diff(&full.suffix_kv.layers[l].value(g), &solo.layers[l].value(t)) < 1e-5
                );
            }
        }
    }

    /// ...and breaks under the naive scheme, as for the LLM path.
    #[test]
    fn item_kv_context_dependent_under_naive() {
        let model = HstuModel::random(hstu_cfg(), 13);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::NaiveCausal);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let full = model.forward(&seq, None);
        let solo = model.compute_kv(&layout.item_standalone(1, &i[1], 0));
        let mut differs = false;
        for l in 0..model.config().layers {
            if max_diff(&full.suffix_kv.layers[l].key(2), &solo.layers[l].key(0)) > 1e-3 {
                differs = true;
            }
        }
        assert!(differs);
    }

    /// Candidate-permutation equivariance (set semantics) carries over.
    #[test]
    fn candidate_permutation_equivariance() {
        let model = HstuModel::random(hstu_cfg(), 21);
        let (u, i, s) = parts();
        let layout = PromptLayout::new(MaskScheme::Bipartite);
        let seq = layout.build(PrefixKind::Item, &u, &i, &s);
        let scores = model.forward(&seq, None).candidate_scores(&[0, 1, 2]);
        let permuted = vec![i[2].clone(), i[0].clone(), i[1].clone()];
        let seq_p = layout.build(PrefixKind::Item, &u, &permuted, &s);
        let scores_p = model.forward(&seq_p, None).candidate_scores(&[2, 0, 1]);
        assert!(max_diff(&[scores[2], scores[0], scores[1]], &scores_p) < 1e-4);
    }

    /// The parallel HSTU forward is bit-identical to its serial run.
    #[test]
    fn hstu_forward_bit_identical_across_thread_counts() {
        let model = HstuModel::random(hstu_cfg(), 37);
        let (u, i, s) = parts();
        let seq = PromptLayout::new(MaskScheme::Bipartite).build(PrefixKind::Item, &u, &i, &s);
        bat_exec::set_threads(1);
        let gold = model.forward(&seq, None);
        for t in [2, 4, 8] {
            bat_exec::set_threads(t);
            let got = model.forward(&seq, None);
            assert!(
                gold.logits
                    .iter()
                    .zip(&got.logits)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{t} threads: HSTU logits diverged from serial"
            );
        }
        bat_exec::set_threads(1);
    }

    #[test]
    #[should_panic(expected = "matched query/key heads")]
    fn gqa_rejected() {
        let _ = HstuModel::random(GrModelConfig::tiny(32), 1); // 4 q heads, 2 kv
    }
}
