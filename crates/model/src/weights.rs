//! Transformer weights: random initialization and the analytic
//! "pooling" construction used by the semantic ranking experiments.

use crate::config::GrModelConfig;
use bat_tensor::Matrix;
use rand::{rngs::SmallRng, SeedableRng};

/// Weights of one transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// RMSNorm gain before attention.
    pub attn_norm: Vec<f32>,
    /// Query projection, `hidden × q_dim`.
    pub wq: Matrix,
    /// Key projection, `hidden × kv_dim`.
    pub wk: Matrix,
    /// Value projection, `hidden × kv_dim`.
    pub wv: Matrix,
    /// Output projection, `q_dim × hidden`.
    pub wo: Matrix,
    /// RMSNorm gain before the FFN.
    pub ffn_norm: Vec<f32>,
    /// SwiGLU gate projection, `hidden × ffn_dim`.
    pub w_gate: Matrix,
    /// SwiGLU up projection, `hidden × ffn_dim`.
    pub w_up: Matrix,
    /// SwiGLU down projection, `ffn_dim × hidden`.
    pub w_down: Matrix,
}

/// Full model weights. The output head is tied to the embedding table, as
/// in Qwen2-1.5B: `logit_i = ⟨E[i], h⟩`.
#[derive(Debug, Clone)]
pub struct Weights {
    /// Architecture these weights instantiate.
    pub cfg: GrModelConfig,
    /// Token embedding table, `vocab × hidden`; also the (tied) output head.
    pub embedding: Matrix,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
}

impl Weights {
    /// Random (seeded) initialization with roughly Xavier scaling. Produces
    /// a well-conditioned but *meaningless* model — exactly what the
    /// structural invariance tests need: Bipartite Attention's cache-reuse
    /// exactness must hold for any weights.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GrModelConfig::validate`].
    pub fn random(cfg: GrModelConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid model config");
        let mut rng = SmallRng::seed_from_u64(seed);
        let h = cfg.hidden_dim;
        let scale = (1.0 / h as f32).sqrt();
        let layers = (0..cfg.layers)
            .map(|_| LayerWeights {
                attn_norm: vec![1.0; h],
                wq: Matrix::random(h, cfg.q_dim(), scale, &mut rng),
                wk: Matrix::random(h, cfg.kv_dim(), scale, &mut rng),
                wv: Matrix::random(h, cfg.kv_dim(), scale, &mut rng),
                wo: Matrix::random(cfg.q_dim(), h, scale, &mut rng),
                ffn_norm: vec![1.0; h],
                w_gate: Matrix::random(h, cfg.ffn_dim, scale, &mut rng),
                w_up: Matrix::random(h, cfg.ffn_dim, scale, &mut rng),
                w_down: Matrix::random(cfg.ffn_dim, h, scale, &mut rng),
            })
            .collect();
        Weights {
            embedding: Matrix::random(cfg.vocab_size, h, 1.0, &mut rng),
            layers,
            final_norm: vec![1.0; h],
            cfg,
        }
    }

    /// The analytic **marker-routed** construction used for the Table 3
    /// reproduction.
    ///
    /// Given a planted *profile-marker* unit vector `μ` (shared by the
    /// discriminant token and the user-history tokens in the semantic
    /// world's embedding table):
    ///
    /// * `W_Q = qk_scale · I` — queries are the token's normalized content;
    /// * `W_K = qk_scale · μμᵀ` — keys collapse onto the marker axis, so the
    ///   attention logit is `qk_scale² · ⟨x̂_q, μ⟩⟨x̂_k, μ⟩` (rotated by
    ///   RoPE): marker-bearing queries attend marker-bearing keys, i.e. the
    ///   discriminant selectively pools the user's history, the way a
    ///   finetuned ranker routes information;
    /// * `W_V = value_scale · (I − μμᵀ)` — values carry the token's content
    ///   *minus* the marker, so the discriminant's self-attention contributes
    ///   nothing and the pooled update is pure item signal;
    /// * `W_O = I`, FFN zeroed (the residual carries).
    ///
    /// The tied output head then scores `logit_i = ⟨E[v_i], h⟩`, ranking
    /// candidates by affinity to the pooled history — a linear-attention
    /// recommender expressed inside the real transformer.
    ///
    /// `qk_scale` controls attention sharpness and hence position
    /// sensitivity: RoPE rotates queries and keys, so a larger scale makes
    /// the model *order-biased* (the paper's "instruction-tuned" failure
    /// mode, §4.2), while a moderate value yields an order-robust base
    /// model.
    ///
    /// # Panics
    ///
    /// Panics unless `query_heads == kv_heads` and `kv_dim() == hidden_dim`
    /// (the construction needs square projections), or if `embedding` or
    /// `marker` have the wrong shape.
    pub fn routed(
        cfg: GrModelConfig,
        embedding: Matrix,
        marker: &[f32],
        qk_scale: f32,
        value_scale: f32,
    ) -> Self {
        cfg.validate().expect("invalid model config");
        assert_eq!(
            cfg.query_heads, cfg.kv_heads,
            "routed construction needs query_heads == kv_heads"
        );
        assert_eq!(
            cfg.kv_dim(),
            cfg.hidden_dim,
            "routed construction needs kv_dim == hidden_dim"
        );
        assert_eq!(embedding.rows(), cfg.vocab_size, "embedding rows != vocab");
        assert_eq!(embedding.cols(), cfg.hidden_dim, "embedding cols != hidden");
        assert_eq!(marker.len(), cfg.hidden_dim, "marker dim != hidden");
        let h = cfg.hidden_dim;
        let scaled_identity = |s: f32| {
            let mut m = Matrix::zeros(h, h);
            for i in 0..h {
                m.set(i, i, s);
            }
            m
        };
        // W_K = s·μμᵀ: row-vector x maps to s·⟨x, μ⟩·μ.
        let mut wk = Matrix::zeros(h, h);
        for i in 0..h {
            for j in 0..h {
                wk.set(i, j, qk_scale * marker[i] * marker[j]);
            }
        }
        // W_V = v·(I − μμᵀ): values with the marker projected out.
        let mut wv = Matrix::zeros(h, h);
        for i in 0..h {
            for j in 0..h {
                let delta = if i == j { 1.0 } else { 0.0 };
                wv.set(i, j, value_scale * (delta - marker[i] * marker[j]));
            }
        }
        let layers = (0..cfg.layers)
            .map(|_| LayerWeights {
                attn_norm: vec![1.0; h],
                wq: scaled_identity(qk_scale),
                wk: wk.clone(),
                wv: wv.clone(),
                wo: Matrix::identity(h),
                ffn_norm: vec![1.0; h],
                w_gate: Matrix::zeros(h, cfg.ffn_dim),
                w_up: Matrix::zeros(h, cfg.ffn_dim),
                w_down: Matrix::zeros(cfg.ffn_dim, h),
            })
            .collect();
        Weights {
            embedding,
            layers,
            final_norm: vec![1.0; h],
            cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_weights_have_expected_shapes() {
        let cfg = GrModelConfig::tiny(50);
        let w = Weights::random(cfg.clone(), 7);
        assert_eq!(w.layers.len(), cfg.layers);
        assert_eq!(w.embedding.rows(), 50);
        let l = &w.layers[0];
        assert_eq!((l.wq.rows(), l.wq.cols()), (cfg.hidden_dim, cfg.q_dim()));
        assert_eq!((l.wk.rows(), l.wk.cols()), (cfg.hidden_dim, cfg.kv_dim()));
        assert_eq!((l.wo.rows(), l.wo.cols()), (cfg.q_dim(), cfg.hidden_dim));
        assert_eq!(
            (l.w_down.rows(), l.w_down.cols()),
            (cfg.ffn_dim, cfg.hidden_dim)
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let cfg = GrModelConfig::tiny(20);
        let a = Weights::random(cfg.clone(), 42);
        let b = Weights::random(cfg, 42);
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(a.layers[0].wq, b.layers[0].wq);
    }

    fn pooling_cfg(vocab: usize) -> GrModelConfig {
        GrModelConfig {
            query_heads: 2,
            kv_heads: 2,
            head_dim: 16,
            hidden_dim: 32,
            ..GrModelConfig::tiny(vocab)
        }
    }

    fn unit_marker() -> Vec<f32> {
        let mut m = vec![0.0f32; 32];
        m[0] = 0.6;
        m[1] = 0.8;
        m
    }

    #[test]
    fn routed_construction_shapes_and_algebra() {
        let cfg = pooling_cfg(10);
        let emb = Matrix::random(10, 32, 1.0, &mut SmallRng::seed_from_u64(1));
        let marker = unit_marker();
        let w = Weights::routed(cfg, emb, &marker, 0.5, 0.7);
        assert_eq!(w.layers[0].wo, Matrix::identity(32));
        assert_eq!(w.layers[0].w_gate, Matrix::zeros(32, 64));
        // W_K collapses any vector onto the marker axis.
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.13).sin()).collect();
        let k = w.layers[0].wk.vecmul(&x);
        let proj: f32 = x.iter().zip(&marker).map(|(a, b)| a * b).sum();
        for (i, &ki) in k.iter().enumerate() {
            assert!((ki - 0.5 * proj * marker[i]).abs() < 1e-5);
        }
        // W_V annihilates the marker direction.
        let v = w.layers[0].wv.vecmul(&marker);
        assert!(v.iter().all(|&x| x.abs() < 1e-5));
    }

    #[test]
    #[should_panic(expected = "query_heads == kv_heads")]
    fn routed_rejects_gqa() {
        let cfg = GrModelConfig::tiny(10); // 4 query heads, 2 kv heads
        let emb = Matrix::zeros(10, 32);
        let _ = Weights::routed(cfg, emb, &unit_marker(), 0.05, 1.0);
    }

    #[test]
    #[should_panic(expected = "embedding rows")]
    fn routed_rejects_bad_embedding() {
        let cfg = pooling_cfg(10);
        let emb = Matrix::zeros(5, 32);
        let _ = Weights::routed(cfg, emb, &unit_marker(), 0.05, 1.0);
    }
}
