//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework under serde's names. Instead of serde's
//! visitor architecture, both traits go through an owned JSON-like
//! [`Value`]: [`Serialize`] renders into it, [`Deserialize`] reads from it.
//! The sibling `serde_json` stand-in provides the text encoding, and
//! `serde_derive` provides `#[derive(Serialize, Deserialize)]` supporting
//! the shapes this workspace uses (named-field structs, transparent
//! newtypes, fieldless enums, and enums with single-field tuple variants,
//! plus the `#[serde(default)]` field attribute).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// A JSON number. Integers keep full 64-bit precision; everything else is
/// an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy only beyond 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// The intermediate data model every serializable type renders into.
///
/// Objects preserve insertion order so that struct fields serialize in
/// declaration order (and runs serialize bit-identically).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// The value as `f64` when it is a number (`serde_json::Value::as_f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Missing-key lookups through `value["key"]` return this, like
/// serde_json's `Value::Null` sentinel.
const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_arr().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` out of the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Convenience: renders any serializable value (used by `serde_json` and
/// the `json!` macro).
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(DeError::msg(format!(
                        concat!("expected ", stringify!($t), ", found {}"), other.kind()))),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Num(Number::U(v as u64)) } else { Value::Num(Number::I(v)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(DeError::msg(format!(
                        concat!("expected ", stringify!($t), ", found {}"), other.kind()))),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Num(Number::F(*self))
        } else {
            // JSON has no Inf/NaN; serde_json emits null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            other => Err(DeError::msg(format!(
                "expected f64, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::msg("expected 2-element array")),
        }
    }
}

/// Sets serialize sorted so equal sets always produce identical bytes
/// (determinism matters more here than hash order).
impl<T: Serialize + Ord + Clone + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<T> = self.iter().cloned().collect();
        items.sort();
        Value::Arr(items.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(&String, &V)> = self.iter().collect();
        fields.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Some(3u32).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::Num(Number::U(1))).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(false)).is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert_eq!(f64::NAN.to_value(), Value::Null);
    }

    #[test]
    fn sets_serialize_sorted() {
        let set: HashSet<u64> = [3u64, 1, 2].into_iter().collect();
        assert_eq!(
            set.to_value(),
            Value::Arr(vec![1u64.to_value(), 2u64.to_value(), 3u64.to_value()])
        );
    }
}
