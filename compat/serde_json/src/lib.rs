//! Offline stand-in for `serde_json`.
//!
//! Provides the JSON text layer over the vendored `serde` shim's [`Value`]
//! model: [`to_string`] (compact, `"key":value` with no spaces, matching
//! serde_json), [`to_string_pretty`] (two-space indents), [`from_str`], an
//! insertion-ordered [`Map`], and a [`json!`] macro supporting object
//! literals (including nested ones), array literals, and arbitrary
//! `Serialize` expressions as values.
//!
//! Floats are written with Rust's shortest-roundtrip `{}` formatting, so
//! values survive a serialize→parse round trip exactly; whole floats print
//! without a trailing `.0`, which parses back as an integer `Number` and
//! still deserializes into any float field.

pub use serde::{DeError, Number, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// An insertion-ordered string→value map, mirroring
/// `serde_json::Map<String, Value>`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key/value pair, replacing (in place) any existing entry
    /// with the same key. Returns the previous value if there was one.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Obj(self.entries.clone())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors serde_json's
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indents).
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors serde_json's
/// signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
///
/// # Errors
///
/// Returns a parse error for malformed JSON and a conversion error when the
/// parsed value does not fit `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Renders any serializable value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    serde::to_value(value)
}

/// Builds a [`Value`] from a JSON-ish literal. Object values may be nested
/// object literals, array literals, or arbitrary `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_internal!(obj; $($body)*);
        $crate::Value::Obj(obj)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
/// Brace-group values are matched structurally *before* the `expr` rules so
/// nested object literals never reach the expression parser.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        ::std::iter::Extend::extend(&mut $obj, [($key.to_string(), $crate::json!({ $($inner)* }))]);
        $crate::json_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : { $($inner:tt)* }) => {
        ::std::iter::Extend::extend(&mut $obj, [($key.to_string(), $crate::json!({ $($inner)* }))]);
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        ::std::iter::Extend::extend(&mut $obj, [($key.to_string(), $crate::json!([ $($inner)* ]))]);
        $crate::json_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : [ $($inner:tt)* ]) => {
        ::std::iter::Extend::extend(&mut $obj, [($key.to_string(), $crate::json!([ $($inner)* ]))]);
    };
    ($obj:ident; $key:literal : null , $($rest:tt)*) => {
        ::std::iter::Extend::extend(&mut $obj, [($key.to_string(), $crate::Value::Null)]);
        $crate::json_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : null) => {
        ::std::iter::Extend::extend(&mut $obj, [($key.to_string(), $crate::Value::Null)]);
    };
    ($obj:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        ::std::iter::Extend::extend(&mut $obj, [($key.to_string(), $crate::to_value(&$val))]);
        $crate::json_internal!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal : $val:expr) => {
        ::std::iter::Extend::extend(&mut $obj, [($key.to_string(), $crate::to_value(&$val))]);
    };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, depth: usize) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(n: Number, out: &mut String) {
    use std::fmt::Write;
    match n {
        Number::U(v) => write!(out, "{v}").unwrap(),
        Number::I(v) => write!(out, "{v}").unwrap(),
        // `{}` is Rust's shortest round-trip float formatting.
        Number::F(v) => write!(out, "{v}").unwrap(),
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs (the shim's own writer never
                            // emits them, but accept well-formed input).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        self.pos += 1; // past 'u'
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let num = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I(i)
        } else {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        };
        Ok(Value::Num(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_has_no_spaces() {
        let v = Value::Obj(vec![
            ("system".to_string(), Value::Str("BAT".to_string())),
            ("n".to_string(), Value::Num(Number::U(3))),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"system":"BAT","n":3}"#);
    }

    #[test]
    fn round_trips_through_text() {
        let v = json!({
            "name": "x",
            "vals": [1.5, 2, -3],
            "nested": { "ok": true, "none": null },
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);

        let pretty = to_string_pretty(&v).unwrap();
        let back_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456.789, -2.5e10] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nquote\" slash\\ tab\t".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", Value::Num(Number::U(1)));
        m.insert("a", Value::Num(Number::U(2)));
        m.insert("b", Value::Num(Number::U(3)));
        assert_eq!(to_string(&m).unwrap(), r#"{"b":3,"a":2}"#);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<Value>("{not json}").is_err());
        assert!(from_str::<Value>(r#"{"a": }"#).is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn json_macro_supports_expressions_and_nesting() {
        let mean = 0.25f64;
        let points = vec![1u64, 2, 3];
        let v = json!({ "mean": mean, "points": points, "inner": { "k": "v" } });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"mean":0.25,"points":[1,2,3],"inner":{"k":"v"}}"#
        );
    }
}
