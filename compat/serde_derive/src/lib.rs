//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` shim's `Value`-based traits, without `syn`/`quote`: the
//! item's token stream is walked by hand, and the impl is generated as a
//! string and re-parsed. Supported shapes — the ones this workspace uses:
//!
//! * named-field structs, with `#[serde(default)]` on individual fields;
//! * single-field tuple structs (serialized transparently, matching both
//!   `#[serde(transparent)]` and serde's newtype-struct behavior);
//! * enums with fieldless variants (→ `"Variant"`), single-field tuple
//!   variants (→ `{"Variant": inner}`), and struct variants
//!   (→ `{"Variant": {fields…}}`) — serde's externally-tagged format.
//!
//! Generics and multi-field tuple structs/variants are rejected with a
//! panic at expansion time so misuse fails loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field.
struct Field {
    name: String,
    /// `#[serde(default)]` — missing in input ⇒ `Default::default()`.
    default: bool,
}

/// One enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    /// A fieldless `Variant`.
    Unit,
    /// A single-field tuple `Variant(T)`.
    Newtype,
    /// A named-field `Variant { a: A, b: B }`.
    Struct(Vec<Field>),
}

/// The shapes the derive supports.
enum Shape {
    Named(Vec<Field>),
    Newtype,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (the vendored shim's `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", pairs.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.shape {
                    VariantShape::Unit => format!(
                        "{t}::{v} => ::serde::Value::Str(\"{v}\".to_string()),",
                        t = item.name,
                        v = v.name
                    ),
                    VariantShape::Newtype => format!(
                        "{t}::{v}(inner) => ::serde::Value::Obj(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(inner))]),",
                        t = item.name,
                        v = v.name
                    ),
                    VariantShape::Struct(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pairs: Vec<String> = names
                            .iter()
                            .map(|n| {
                                format!("(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))")
                            })
                            .collect();
                        format!(
                            "{t}::{v} {{ {binds} }} => ::serde::Value::Obj(vec![(\
                             \"{v}\".to_string(), ::serde::Value::Obj(vec![{pairs}]))]),",
                            t = item.name,
                            v = v.name,
                            binds = names.join(", "),
                            pairs = pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name,
        body = body
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (the vendored shim's `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Newtype => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))",
            name = item.name
        ),
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let missing = if f.default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::DeError::msg(\
                             \"missing field `{n}` in {t}\"))",
                            n = f.name,
                            t = item.name
                        )
                    };
                    format!(
                        "{n}: match v.get(\"{n}\") {{ \
                           ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
                           ::std::option::Option::None => {missing}, \
                         }},",
                        n = f.name,
                        missing = missing
                    )
                })
                .collect();
            format!(
                "if v.as_obj().is_none() {{ \
                   return ::std::result::Result::Err(::serde::DeError::msg(\
                     \"expected object for {name}\")); \
                 }} \
                 ::std::result::Result::Ok({name} {{ {inits} }})",
                name = item.name,
                inits = inits.join(" ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({t}::{v}),",
                        t = item.name,
                        v = v.name
                    )
                })
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.shape {
                    VariantShape::Unit => None,
                    VariantShape::Newtype => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({t}::{v}(\
                         ::serde::Deserialize::from_value(inner)?)),",
                        t = item.name,
                        v = v.name
                    )),
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{n}: match inner.get(\"{n}\") {{ \
                                       ::std::option::Option::Some(x) => \
                                         ::serde::Deserialize::from_value(x)?, \
                                       ::std::option::Option::None => \
                                         return ::std::result::Result::Err(\
                                           ::serde::DeError::msg(\
                                             \"missing field `{n}` in {t}::{v}\")), \
                                     }},",
                                    n = f.name,
                                    t = item.name,
                                    v = v.name
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({t}::{v} {{ {inits} }}),",
                            t = item.name,
                            v = v.name,
                            inits = inits.join(" ")
                        ))
                    }
                })
                .collect();
            let err = format!(
                "::std::result::Result::Err(::serde::DeError::msg(\
                 \"unrecognized {name} variant\"))",
                name = item.name
            );
            let mut arms = Vec::new();
            if !unit_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Str(s) => match s.as_str() {{ {} _ => {err} }},",
                    unit_arms.join(" "),
                    err = err
                ));
            }
            if !newtype_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Obj(fields) if fields.len() == 1 => {{ \
                       let (tag, inner) = &fields[0]; \
                       match tag.as_str() {{ {} _ => {err} }} \
                     }},",
                    newtype_arms.join(" "),
                    err = err
                ));
            }
            arms.push(format!("_ => {err},", err = err));
            format!("match v {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
             {{ {body} }}\n\
         }}",
        name = item.name,
        body = body
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (including expanded doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = expect_ident(&tokens, i);
    i += 1;
    let name = expect_ident(&tokens, i);
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported ({name})");
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde_derive shim: expected body for {name}, found {other:?}"),
    };

    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => {
            let fields = split_top_commas(body.stream());
            if fields.len() != 1 {
                panic!(
                    "serde_derive shim: tuple struct {name} must have exactly 1 field, \
                     found {}",
                    fields.len()
                );
            }
            Shape::Newtype
        }
        ("enum", Delimiter::Brace) => Shape::Enum(parse_variants(body.stream())),
        _ => panic!("serde_derive shim: unsupported item shape for {name}"),
    };

    Item { name, shape }
}

fn expect_ident(tokens: &[TokenTree], i: usize) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

/// Splits a group's stream on top-level commas. Commas nested in `(...)`,
/// `[...]`, `{...}` arrive pre-grouped; commas inside generic angle brackets
/// are excluded by tracking `<`/`>` depth.
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Skips leading `#[...]` attributes in a token slice, returning the index
/// past them and whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree]) -> (usize, bool) {
    let mut i = 0;
    let mut has_default = false;
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if attr_is_serde_default(g.stream()) {
                has_default = true;
            }
        }
        i += 2;
    }
    (i, has_default)
}

fn attr_is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(path)), Some(TokenTree::Group(args)))
            if path.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|tt| matches!(tt, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_commas(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let (mut i, default) = skip_attrs(&chunk);
            if matches!(chunk.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Field {
                name: expect_ident(&chunk, i),
                default,
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_commas(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let (i, _) = skip_attrs(&chunk);
            let name = expect_ident(&chunk, i);
            let shape = match chunk.get(i + 1) {
                None => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let fields = split_top_commas(g.stream());
                    if fields.len() != 1 {
                        panic!(
                            "serde_derive shim: tuple variant {name} must have exactly 1 \
                             field, found {}",
                            fields.len()
                        );
                    }
                    VariantShape::Newtype
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g.stream()))
                }
                Some(other) => {
                    panic!("serde_derive shim: unexpected token after variant {name}: {other:?}")
                }
            };
            Variant { name, shape }
        })
        .collect()
}
