//! Offline stand-in for `proptest`.
//!
//! A deterministic property-test runner covering the API surface this
//! workspace uses: the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and strategies for
//! integer/float ranges, tuples of strategies, `collection::vec`, and
//! `bool::ANY`. Unlike real proptest there is no shrinking: a failing case
//! panics with its case index and derived seed, which is reproducible
//! because the runner is fully deterministic (seeds derive from the test
//! name, not from entropy).

use std::ops::Range;

/// Runner configuration; `ProptestConfig` in the prelude.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs — draw a fresh case.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from anything displayable.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection from anything displayable.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-case deterministic random source (xoshiro256++ seeded via
/// SplitMix64 — self-contained so the shim has no dependencies).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn from_seed(mut seed: u64) -> Self {
        let mut next = || {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs. Strategies are evaluated afresh per case.
pub trait Strategy {
    /// The produced input type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Whole-domain generation for `fn prop(x: u64, ...)`-style proptest
/// arguments (the `any::<T>()` strategy in real proptest).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy for a fair boolean (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair coin flip.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Drives one property: draws inputs and runs `case` until `config.cases`
/// successes, panicking on the first failure. Deterministic: the per-case
/// seed is derived from the test name and attempt index.
pub fn run_cases<F>(config: &Config, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut attempt = 0u64;
    while successes < config.cases {
        let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest `{name}`: too many prop_assume! rejections \
                     ({rejects} after {successes} successful cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {successes} \
                     (attempt {attempt}, seed {seed:#x}):\n{msg}"
                );
            }
        }
        attempt += 1;
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Defines property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(...)]` header, then `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = <$ty as $crate::Arbitrary>::arbitrary(__rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts inside a proptest case; failure fails the case (not the whole
/// process) with the stringified condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}\n  {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  {}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Rejects the current inputs; the runner draws a fresh case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Config as ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        super::run_cases(&ProptestConfig::with_cases(10), "det", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        super::run_cases(&ProptestConfig::with_cases(10), "det", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "always false")]
    fn failures_panic_with_message() {
        super::run_cases(&ProptestConfig::with_cases(4), "fails", |_rng| {
            Err(TestCaseError::fail("always false"))
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, assume and assertions together.
        #[test]
        fn macro_end_to_end(
            x in 3u64..17,
            f in -1.0f64..1.0,
            v in crate::collection::vec((0u8..4, crate::bool::ANY), 0..8),
            flag in crate::bool::ANY,
        ) {
            prop_assume!(x != 5);
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f = {}", f);
            prop_assert!(v.len() < 8);
            for (a, _b) in &v {
                prop_assert!(*a < 4);
            }
            prop_assert_eq!(flag & flag, flag);
        }

        /// A second function in the same block also runs.
        #[test]
        fn second_function(y in 0i32..10) {
            prop_assert!((0..10).contains(&y));
        }
    }
}
