//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock timing harness exposing the criterion API surface
//! the workspace's benches use: [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], benchmark groups with `sample_size`, and
//! [`Bencher::iter`] / [`Bencher::iter_batched`]. It reports the mean and
//! minimum time per iteration on stdout; there is no statistical analysis,
//! HTML report, or regression tracking. `--bench`-style CLI flags are
//! accepted and ignored so `cargo bench` extra args don't error.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing budget for one benchmark measurement.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_ITERS: u64 = 3;

/// Controls how `iter_batched` amortizes setup cost; the shim times each
/// routine call individually, so the variants behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    /// Target number of timed samples (informational in the shim).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id);
        self
    }
}

/// A named collection of benchmarks, mirroring criterion's group API.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (informational in the shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine` until the measurement budget is
    /// spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let budget_start = Instant::now();
        while budget_start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let budget_start = Instant::now();
        while budget_start.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<40} mean {:>12} min {:>12} ({} iters)",
            format_duration(mean),
            format_duration(min),
            self.samples.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group function running each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
