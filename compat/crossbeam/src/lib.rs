//! Offline stand-in for `crossbeam`.
//!
//! Implements the `crossbeam::channel` surface this workspace uses: MPMC
//! channels with cloneable senders *and* receivers, built on
//! `Mutex<VecDeque>` + two condvars. Disconnect semantics mirror crossbeam:
//! `recv` drains remaining messages after all senders drop and only then
//! reports disconnection; `send` fails once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        /// `None` for unbounded channels.
        cap: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently has no messages.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel is empty"),
                TryRecvError::Disconnected => write!(f, "channel is disconnected"),
            }
        }
    }

    /// Sending half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC) — clones compete for messages.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel: `send` blocks while `cap` messages are
    /// queued. `cap` must be at least 1 (the shim does not implement
    /// crossbeam's zero-capacity rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "crossbeam shim: zero-capacity channels unsupported"
        );
        new_channel(Some(cap))
    }

    /// Creates an unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake all receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty *and* every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is queued,
        /// [`TryRecvError::Disconnected`] when additionally every sender is
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            let last = inner.receivers == 0;
            drop(inner);
            if last {
                // Wake all senders so blocked sends observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn messages_arrive_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_drains_before_reporting_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(1);
        let rx2 = rx.clone();
        drop(rx);
        drop(rx2);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        sender.join().unwrap();
    }

    #[test]
    fn cloned_receivers_compete_without_duplication() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let n = 1000u64;
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut local = Vec::new();
        let producer = thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        while let Ok(v) = rx.recv() {
            local.push(v);
        }
        producer.join().unwrap();
        let mut all = consumer.join().unwrap();
        all.extend(local);
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
