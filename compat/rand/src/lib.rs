//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand`'s API it actually uses: a seedable
//! deterministic generator (`rngs::SmallRng`, implemented as xoshiro256++),
//! the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`, and
//! `seq::SliceRandom::shuffle`/`choose`. Streams differ from upstream
//! `rand`, but every consumer in this workspace only relies on
//! determinism-per-seed, not on the exact stream.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`rng.gen::<T>()`): floats in `[0, 1)`, integers over their full range,
/// and fair booleans.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types over which `gen_range(lo..hi)` can sample uniformly.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling; the modulo bias over a
                // 128-bit product of a 64-bit draw is negligible for the
                // span sizes this workspace uses.
                let draw = rng.next_u64() as u128;
                let v = (draw * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Floating rounding can land exactly on `hi`; clamp back
                // into the half-open interval.
                if v >= hi { lo } else { v }
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from the half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut seed: u64) -> Self {
            let mut next = || {
                // SplitMix64: expands one u64 into a full state.
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_state(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Upstream `rand` exposes `StdRng` too; alias it for compatibility.
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The slice element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` compatibility.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_draws_cover_the_support() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
