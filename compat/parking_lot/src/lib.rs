//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()` /
//! `read()` / `write()` return guards directly instead of a poison
//! `Result`. A poisoned std lock means a holder panicked; the shim keeps
//! going with the inner data like parking_lot (which has no poisoning)
//! would.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader–writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
